package window

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// replayEvent is one simulated insertion used when aggregating histograms:
// n arrivals at tick t.
type replayEvent struct {
	t Tick
	n uint64
}

// MergeEH performs the order-preserving aggregation EH⊕ = EH1 ⊕ ... ⊕ EHn of
// Section 5.1 (Theorem 4). Each input bucket of size s is replayed into the
// output histogram as ⌈s/2⌉ arrivals at the bucket's start tick and the
// remaining arrivals at its end tick, in global tick order. If the inputs
// were built with error ε and the output is configured with error ε′, the
// merged histogram answers any suffix query with relative error at most
// ε + ε′ + εε′.
//
// Only time-based histograms can be aggregated: count-based ones do not
// retain the order of the zero bits of the combined stream (Figure 2 of the
// paper), so MergeEH rejects them.
func MergeEH(out Config, inputs ...*EH) (*EH, error) {
	if len(inputs) == 0 {
		return nil, errors.New("window: MergeEH requires at least one input")
	}
	if out.Model != TimeBased {
		return nil, errors.New("window: order-preserving aggregation requires time-based windows")
	}
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("window: MergeEH input %d is nil", i)
		}
		if in.cfg.Model != TimeBased {
			return nil, fmt.Errorf("window: MergeEH input %d is %v; count-based exponential histograms cannot be aggregated", i, in.cfg.Model)
		}
	}
	events := gatherReplayEvents(inputs, splitHalfHalf)
	return replayIntoEH(out, events, maxNow(inputs))
}

// MergeEHEndpointOnly is the ablation variant of MergeEH that replays each
// bucket's full size at its end tick instead of splitting it half/half across
// the bucket boundaries. It has no bounded-error guarantee — Theorem 4's
// proof relies on the half/half split — and exists to quantify what the
// split buys (see BenchmarkAblationMergeReplay).
func MergeEHEndpointOnly(out Config, inputs ...*EH) (*EH, error) {
	if len(inputs) == 0 {
		return nil, errors.New("window: MergeEHEndpointOnly requires at least one input")
	}
	if out.Model != TimeBased {
		return nil, errors.New("window: order-preserving aggregation requires time-based windows")
	}
	events := gatherReplayEvents(inputs, splitEndpoint)
	return replayIntoEH(out, events, maxNow(inputs))
}

// splitFunc distributes a bucket's size across its two boundary ticks.
type splitFunc func(b Bucket) (atStart, atEnd uint64)

func splitHalfHalf(b Bucket) (uint64, uint64) {
	half := b.Size / 2
	return b.Size - half, half
}

func splitEndpoint(b Bucket) (uint64, uint64) { return 0, b.Size }

func gatherReplayEvents(inputs []*EH, split splitFunc) []replayEvent {
	lists := make([][]Bucket, len(inputs))
	for k, in := range inputs {
		lists[k] = in.Buckets()
	}
	return replayEventsFromBuckets(lists, split)
}

// replayEventsFromBuckets lowers bucket lists (one per input synopsis,
// oldest → newest) into the tick-ordered arrival replay of Theorem 4. It is
// the shared core of MergeEH and EHBank.MergeCell.
func replayEventsFromBuckets(inputs [][]Bucket, split splitFunc) []replayEvent {
	total := 0
	for _, in := range inputs {
		total += len(in)
	}
	events := make([]replayEvent, 0, 2*total)
	for _, in := range inputs {
		for _, b := range in {
			s, e := split(b)
			if b.Start == b.End {
				if b.Size > 0 {
					events = append(events, replayEvent{t: b.Start, n: b.Size})
				}
				continue
			}
			if s > 0 {
				events = append(events, replayEvent{t: b.Start, n: s})
			}
			if e > 0 {
				events = append(events, replayEvent{t: b.End, n: e})
			}
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })
	return events
}

func replayIntoEH(out Config, events []replayEvent, now Tick) (*EH, error) {
	merged, err := NewEH(out)
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		merged.AddN(ev.t, ev.n)
	}
	merged.Advance(now)
	return merged, nil
}

func maxNow(inputs []*EH) Tick {
	var now Tick
	for _, in := range inputs {
		if in.now > now {
			now = in.now
		}
	}
	return now
}

// MergedRelativeError returns the worst-case relative error of aggregating
// histograms of error eps into a histogram of error epsPrime (Theorem 4):
// eps + eps' + eps·eps'.
func MergedRelativeError(eps, epsPrime float64) float64 {
	return eps + epsPrime + eps*epsPrime
}

// PlanLevelEpsilon returns the per-level error parameter that individual
// exponential histograms must be initialized with so that after h levels of
// hierarchical aggregation the final histogram has relative error at most
// target (Section 5.1, multi-level aggregation):
//
//	ε_level = (√(1+2h+h²+4h·target) − 1 − h) / (2h)
//
// For h = 0 (no aggregation) the target itself is returned.
func PlanLevelEpsilon(target float64, h int) float64 {
	if h <= 0 {
		return target
	}
	hf := float64(h)
	return (math.Sqrt(1+2*hf+hf*hf+4*hf*target) - 1 - hf) / (2 * hf)
}

// MultiLevelRelativeError bounds the relative error after h aggregation
// levels of histograms configured with error eps: h·ε(1+ε) + ε (Section 5.1).
func MultiLevelRelativeError(eps float64, h int) float64 {
	return float64(h)*eps*(1+eps) + eps
}
