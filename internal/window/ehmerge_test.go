package window

import (
	"math"
	"math/rand"
	"testing"
)

// buildSiteStreams splits one logical stream across n sites and returns the
// per-site histograms plus an exact counter over the union.
func buildSiteStreams(t *testing.T, cfg Config, n, events int, seed int64) ([]*EH, *Exact, Tick) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	hs := make([]*EH, n)
	for i := range hs {
		hs[i] = mustEH(t, cfg)
	}
	x := mustExact(t, cfg)
	var now Tick
	for i := 0; i < events; i++ {
		now += Tick(rng.Intn(2))
		hs[rng.Intn(n)].Add(now)
		x.Add(now)
	}
	for _, h := range hs {
		h.Advance(now)
	}
	return hs, x, now
}

func TestMergeEHTheorem4Bound(t *testing.T) {
	const eps = 0.1
	cfg := Config{Length: 3000, Epsilon: eps}
	hs, x, _ := buildSiteStreams(t, cfg, 4, 12000, 17)
	merged, err := MergeEH(cfg, hs...)
	if err != nil {
		t.Fatalf("MergeEH: %v", err)
	}
	bound := MergedRelativeError(eps, eps) // ε + ε' + εε'
	for _, r := range []Tick{3000, 1500, 700, 200} {
		got := merged.EstimateRange(r)
		want := float64(x.CountRange(r))
		if want < 10 {
			continue
		}
		if abs64(got-want) > bound*want+1 {
			t.Errorf("merged EstimateRange(%d) = %v, exact = %v, bound = %v",
				r, got, want, bound*want)
		}
	}
	if err := merged.checkInvariant(); err != nil {
		t.Errorf("merged histogram violates EH invariant: %v", err)
	}
}

func TestMergeEHSingleInputRoundTrip(t *testing.T) {
	// Merging a single histogram re-summarizes it; estimates stay within the
	// composed bound of the original stream.
	const eps = 0.1
	cfg := Config{Length: 2000, Epsilon: eps}
	hs, x, _ := buildSiteStreams(t, cfg, 1, 6000, 23)
	merged, err := MergeEH(cfg, hs[0])
	if err != nil {
		t.Fatalf("MergeEH: %v", err)
	}
	bound := MergedRelativeError(eps, eps)
	for _, r := range []Tick{2000, 900} {
		got := merged.EstimateRange(r)
		want := float64(x.CountRange(r))
		if abs64(got-want) > bound*want+1 {
			t.Errorf("EstimateRange(%d) = %v, exact %v", r, got, want)
		}
	}
}

func TestMergeEHRejectsCountBased(t *testing.T) {
	cb := Config{Model: CountBased, Length: 100, Epsilon: 0.1}
	h := mustEH(t, cb)
	if _, err := MergeEH(cb, h); err == nil {
		t.Fatal("MergeEH accepted count-based histograms (Figure 2 shows this is impossible)")
	}
	tb := Config{Model: TimeBased, Length: 100, Epsilon: 0.1}
	if _, err := MergeEH(tb, h); err == nil {
		t.Fatal("MergeEH accepted a count-based input into a time-based output")
	}
}

func TestMergeEHEmptyInputs(t *testing.T) {
	cfg := Config{Length: 100, Epsilon: 0.1}
	if _, err := MergeEH(cfg); err == nil {
		t.Fatal("MergeEH with no inputs succeeded")
	}
	h := mustEH(t, cfg)
	merged, err := MergeEH(cfg, h, mustEH(t, cfg))
	if err != nil {
		t.Fatalf("MergeEH of empty histograms: %v", err)
	}
	if got := merged.EstimateWindow(); got != 0 {
		t.Errorf("merged empty EstimateWindow = %v, want 0", got)
	}
}

func TestMergeEHPreservesTotalMass(t *testing.T) {
	// The replay inserts exactly the summarized arrivals, so the merged
	// total matches the sum of input totals (no window expiry in between).
	cfg := Config{Length: 1 << 40, Epsilon: 0.1}
	hs, _, _ := buildSiteStreams(t, cfg, 3, 5000, 31)
	var sum uint64
	for _, h := range hs {
		sum += h.Total()
	}
	merged, err := MergeEH(cfg, hs...)
	if err != nil {
		t.Fatalf("MergeEH: %v", err)
	}
	if merged.Total() != sum {
		t.Errorf("merged Total = %d, want %d", merged.Total(), sum)
	}
}

func TestMultiLevelAggregation(t *testing.T) {
	// Hierarchical aggregation over h levels: error grows at most like
	// h·ε(1+ε)+ε (Section 5.1). Build a 3-level binary tree over 8 sites.
	const eps = 0.05
	cfg := Config{Length: 4000, Epsilon: eps}
	hs, x, _ := buildSiteStreams(t, cfg, 8, 24000, 41)
	level := hs
	h := 0
	for len(level) > 1 {
		var next []*EH
		for i := 0; i < len(level); i += 2 {
			m, err := MergeEH(cfg, level[i], level[i+1])
			if err != nil {
				t.Fatalf("MergeEH at level %d: %v", h, err)
			}
			next = append(next, m)
		}
		level = next
		h++
	}
	root := level[0]
	bound := MultiLevelRelativeError(eps, h)
	for _, r := range []Tick{4000, 2000, 1000} {
		got := root.EstimateRange(r)
		want := float64(x.CountRange(r))
		if want < 10 {
			continue
		}
		if abs64(got-want) > bound*want+1 {
			t.Errorf("h=%d EstimateRange(%d) = %v, exact %v, bound %v", h, r, got, want, bound*want)
		}
	}
}

func TestPlanLevelEpsilon(t *testing.T) {
	// Inverse relationship: initializing levels with the planned ε must give
	// a multi-level bound equal to the target.
	for _, target := range []float64{0.05, 0.1, 0.3} {
		for _, h := range []int{1, 2, 5, 8} {
			lvl := PlanLevelEpsilon(target, h)
			if lvl <= 0 || lvl >= target {
				t.Errorf("PlanLevelEpsilon(%v,%d) = %v, want in (0, target)", target, h, lvl)
				continue
			}
			back := MultiLevelRelativeError(lvl, h)
			if math.Abs(back-target) > 1e-9 {
				t.Errorf("MultiLevelRelativeError(PlanLevelEpsilon(%v,%d)) = %v, want %v", target, h, back, target)
			}
		}
	}
	if got := PlanLevelEpsilon(0.1, 0); got != 0.1 {
		t.Errorf("PlanLevelEpsilon(0.1, 0) = %v, want 0.1", got)
	}
}

func TestMergeEHEndpointOnlyIsWorse(t *testing.T) {
	// Ablation: the endpoint-only replay loses Theorem 4's guarantee. On a
	// stream where buckets straddle the query boundary, half/half replay
	// must not be (meaningfully) worse than endpoint-only replay on average.
	const eps = 0.1
	cfg := Config{Length: 3000, Epsilon: eps}
	var errHalf, errEnd float64
	for seed := int64(0); seed < 5; seed++ {
		hs, x, _ := buildSiteStreams(t, cfg, 4, 12000, 100+seed)
		mh, err := MergeEH(cfg, hs...)
		if err != nil {
			t.Fatalf("MergeEH: %v", err)
		}
		me, err := MergeEHEndpointOnly(cfg, hs...)
		if err != nil {
			t.Fatalf("MergeEHEndpointOnly: %v", err)
		}
		for _, r := range []Tick{2500, 1200, 600, 300} {
			want := float64(x.CountRange(r))
			if want == 0 {
				continue
			}
			errHalf += abs64(mh.EstimateRange(r)-want) / want
			errEnd += abs64(me.EstimateRange(r)-want) / want
		}
	}
	if errHalf > errEnd*1.5+0.05 {
		t.Errorf("half/half replay error %.4f ≫ endpoint-only %.4f; Theorem 4 split should not lose",
			errHalf, errEnd)
	}
	t.Logf("cumulative relative error: half/half=%.4f endpoint-only=%.4f", errHalf, errEnd)
}
