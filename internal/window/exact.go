package window

// exactEntry stores n arrivals at tick t together with the cumulative count
// of arrivals up to and including this entry, enabling O(log) suffix queries.
type exactEntry struct {
	t   Tick
	n   uint64
	cum uint64 // arrivals up to and including this entry since last compaction
}

// Exact is a reference counter that answers every suffix query exactly by
// retaining all arrivals inside the window. It exists as the ground truth
// against which the approximate synopses are evaluated and property-tested;
// its memory grows linearly with the window content.
type Exact struct {
	cfg     Config
	entries []exactEntry
	head    int // index of the first live entry
	base    uint64
	now     Tick
}

// NewExact constructs an exact sliding-window counter.
func NewExact(cfg Config) (*Exact, error) {
	if err := cfg.Validate(AlgoExact); err != nil {
		return nil, err
	}
	return &Exact{cfg: cfg}, nil
}

// Config returns the configuration the counter was built with.
func (x *Exact) Config() Config { return x.cfg }

// Add registers one arrival at tick t.
func (x *Exact) Add(t Tick) { x.AddN(t, 1) }

// AddN registers n arrivals at tick t.
func (x *Exact) AddN(t Tick, n uint64) {
	if t == 0 {
		t = 1 // ticks are 1-based
	}
	if t < x.now {
		t = x.now
	}
	x.now = t
	if n == 0 {
		x.expire()
		return
	}
	// Coalesce arrivals sharing a tick.
	if m := len(x.entries); m > x.head && x.entries[m-1].t == t {
		x.entries[m-1].n += n
		x.entries[m-1].cum += n
	} else {
		var cum uint64
		if m > x.head {
			cum = x.entries[m-1].cum
		}
		x.entries = append(x.entries, exactEntry{t: t, n: n, cum: cum + n})
	}
	x.expire()
}

// Advance moves the window to tick t, expiring old arrivals.
func (x *Exact) Advance(t Tick) {
	if t > x.now {
		x.now = t
	}
	x.expire()
}

// Now reports the latest observed tick.
func (x *Exact) Now() Tick { return x.now }

func (x *Exact) expire() {
	if x.now < x.cfg.Length {
		return
	}
	cut := x.now - x.cfg.Length
	for x.head < len(x.entries) && x.entries[x.head].t <= cut {
		x.head++
	}
	// Compact once the dead prefix dominates, keeping amortized O(1) cost.
	if x.head > 0 && x.head*2 >= len(x.entries) && x.head >= 64 {
		x.compact()
	}
	if x.head == len(x.entries) {
		x.entries = x.entries[:0]
		x.head = 0
		x.base = 0
	}
}

func (x *Exact) compact() {
	x.base = x.entries[x.head-1].cum
	live := copy(x.entries, x.entries[x.head:])
	x.entries = x.entries[:live]
	x.head = 0
	for i := range x.entries {
		x.entries[i].cum -= x.base
	}
	x.base = 0
}

// CountSince returns the exact number of arrivals with tick > since.
func (x *Exact) CountSince(since Tick) uint64 {
	if x.now >= x.cfg.Length {
		if ws := x.now - x.cfg.Length; since < ws {
			since = ws
		}
	}
	live := x.entries[x.head:]
	if len(live) == 0 {
		return 0
	}
	// Binary search for the first live entry with t > since.
	lo, hi := 0, len(live)
	for lo < hi {
		mid := (lo + hi) / 2
		if live[mid].t > since {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(live) {
		return 0
	}
	total := live[len(live)-1].cum
	var before uint64
	if lo > 0 {
		before = live[lo-1].cum
	} else if x.head > 0 {
		before = x.entries[x.head-1].cum
	}
	return total - before
}

// EstimateSince returns the exact count as a float, satisfying Counter.
func (x *Exact) EstimateSince(since Tick) float64 { return float64(x.CountSince(since)) }

// EstimateRange returns the exact count of arrivals within the last r ticks.
func (x *Exact) EstimateRange(r Tick) float64 {
	r = clampRange(r, x.cfg.Length)
	return x.EstimateSince(rangeToSince(x.now, r))
}

// CountRange returns the exact count within the last r ticks.
func (x *Exact) CountRange(r Tick) uint64 {
	r = clampRange(r, x.cfg.Length)
	return x.CountSince(rangeToSince(x.now, r))
}

// EstimateWindow returns the exact count within the whole window.
func (x *Exact) EstimateWindow() float64 { return x.EstimateRange(x.cfg.Length) }

// MemoryBytes reports the heap footprint.
func (x *Exact) MemoryBytes() int { return 64 + cap(x.entries)*24 }

// Reset empties the counter.
func (x *Exact) Reset() {
	x.entries = x.entries[:0]
	x.head = 0
	x.base = 0
	x.now = 0
}
