package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactBasics(t *testing.T) {
	x := mustExact(t, Config{Length: 10})
	x.Add(1)
	x.Add(5)
	x.AddN(5, 2)
	if got := x.CountSince(0); got != 4 {
		t.Errorf("CountSince(0) = %d, want 4", got)
	}
	if got := x.CountSince(4); got != 3 {
		t.Errorf("CountSince(4) = %d, want 3", got)
	}
	x.Advance(12)
	// Window (2,12]: arrival at 1 expired.
	if got := x.CountSince(0); got != 3 {
		t.Errorf("CountSince(0) after advance = %d, want 3", got)
	}
	x.Advance(100)
	if got := x.CountSince(0); got != 0 {
		t.Errorf("CountSince(0) after full expiry = %d, want 0", got)
	}
}

func TestExactCompaction(t *testing.T) {
	// Long stream through a short window: the entry slice must not grow
	// without bound thanks to compaction.
	x := mustExact(t, Config{Length: 100})
	for i := Tick(1); i <= 100000; i++ {
		x.Add(i)
	}
	if got := x.CountSince(0); got != 100 {
		t.Errorf("CountSince(0) = %d, want 100", got)
	}
	if mb := x.MemoryBytes(); mb > 1<<20 {
		t.Errorf("exact counter memory %d bytes after compaction, want < 1MiB", mb)
	}
}

// TestExactAgainstBruteForce cross-checks the prefix-sum ring against a
// naive recount for arbitrary streams — the ground truth must itself be
// trustworthy.
func TestExactAgainstBruteForce(t *testing.T) {
	prop := func(gaps []uint8, counts []uint8, since uint16) bool {
		const n = 200
		x, _ := NewExact(Config{Length: n})
		type arr struct {
			t Tick
			n uint64
		}
		var log []arr
		var now Tick
		for i, g := range gaps {
			now += Tick(g % 7)
			cnt := uint64(1)
			if i < len(counts) {
				cnt = uint64(counts[i]%4) + 1
			}
			x.AddN(now, cnt)
			log = append(log, arr{t: now, n: cnt})
		}
		s := Tick(since)
		if now >= n && s < now-n {
			s = now - n
		}
		var want uint64
		for _, a := range log {
			if a.t > s && (now < n || a.t > now-n) {
				want += a.n
			}
		}
		return x.CountSince(Tick(since)) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestExactCoalescesSameTick(t *testing.T) {
	x := mustExact(t, Config{Length: 100})
	for i := 0; i < 1000; i++ {
		x.Add(42)
	}
	if got := x.CountSince(0); got != 1000 {
		t.Errorf("CountSince = %d, want 1000", got)
	}
	if len(x.entries) != 1 {
		t.Errorf("entries = %d, want 1 (coalesced)", len(x.entries))
	}
}

func TestNewDispatch(t *testing.T) {
	cfg := Config{Length: 100, Epsilon: 0.1, Delta: 0.1}
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW, AlgoExact} {
		c, err := New(algo, cfg)
		if err != nil {
			t.Fatalf("New(%v): %v", algo, err)
		}
		c.Add(1)
		if got := c.EstimateWindow(); got != 1 {
			t.Errorf("%v: EstimateWindow = %v, want 1", algo, got)
		}
	}
	if _, err := New(Algorithm(99), cfg); err == nil {
		t.Error("New with bogus algorithm succeeded")
	}
}

func TestModelAndAlgorithmStrings(t *testing.T) {
	if TimeBased.String() != "time-based" || CountBased.String() != "count-based" {
		t.Error("Model.String mismatch")
	}
	for algo, want := range map[Algorithm]string{AlgoEH: "EH", AlgoDW: "DW", AlgoRW: "RW", AlgoExact: "Exact"} {
		if algo.String() != want {
			t.Errorf("Algorithm(%d).String() = %q, want %q", algo, algo.String(), want)
		}
	}
}

func TestCountersUnderUniformStream(t *testing.T) {
	// All four algorithms agree (within ε) on a deterministic dense stream.
	cfg := Config{Length: 1000, Epsilon: 0.1, Delta: 0.1, UpperBound: 1000}
	counters := map[string]Counter{}
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW, AlgoExact} {
		c, err := New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		counters[algo.String()] = c
	}
	for i := Tick(1); i <= 5000; i++ {
		for _, c := range counters {
			c.Add(i)
		}
	}
	want := 1000.0
	for name, c := range counters {
		got := c.EstimateWindow()
		tol := 0.1*want + 1
		if name == "RW" {
			tol = 0.3*want + 1 // randomized: generous tolerance for a single draw
		}
		if abs64(got-want) > tol {
			t.Errorf("%s EstimateWindow = %v, want %v ± %v", name, got, want, tol)
		}
	}
}

func BenchmarkEHAdd(b *testing.B) {
	h, _ := NewEH(Config{Length: 1 << 20, Epsilon: 0.1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(Tick(i))
	}
}

func BenchmarkDWAdd(b *testing.B) {
	w, _ := NewDW(Config{Length: 1 << 20, Epsilon: 0.1, UpperBound: 1 << 20})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(Tick(i))
	}
}

func BenchmarkRWAdd(b *testing.B) {
	w, _ := NewRW(Config{Length: 1 << 20, Epsilon: 0.1, Delta: 0.1, UpperBound: 1 << 20})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(Tick(i))
	}
}

func BenchmarkEHQuery(b *testing.B) {
	h, _ := NewEH(Config{Length: 1 << 20, Epsilon: 0.1})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<18; i++ {
		h.Add(Tick(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.EstimateRange(Tick(rng.Intn(1 << 18)))
	}
}
