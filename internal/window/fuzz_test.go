package window

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// Fuzz targets: decoders must never panic on arbitrary bytes — they either
// reconstruct a queryable synopsis or return an error. `go test` exercises
// the seed corpus; `go test -fuzz=FuzzUnmarshalEH ./internal/window` digs
// deeper.

func fuzzSeeds(f *testing.F, enc []byte) {
	f.Add(enc)
	f.Add([]byte{})
	f.Add([]byte{0xE1})
	f.Add([]byte{0xE2, 0x00})
	f.Add([]byte{0xE3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	if len(enc) > 4 {
		mut := append([]byte(nil), enc...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
		f.Add(enc[:len(enc)/2])
	}
}

func FuzzUnmarshalEH(f *testing.F) {
	h, err := NewEH(Config{Length: 1000, Epsilon: 0.1})
	if err != nil {
		f.Fatal(err)
	}
	for i := Tick(1); i <= 500; i++ {
		h.Add(i)
	}
	fuzzSeeds(f, h.Marshal())
	if golden, err := hex.DecodeString(ehGoldenHex); err == nil {
		f.Add(golden) // pre-refactor encoder output (see golden_test.go)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalEH(data)
		if err != nil {
			return
		}
		// Whatever decoded must answer queries without panicking and
		// respect basic sanity.
		w := dec.EstimateWindow()
		if w < 0 {
			t.Fatalf("negative estimate %v", w)
		}
		// The flat bank must also survive the raw bytes without panicking.
		// (Answers may legitimately differ on non-canonical encodings that
		// overfill a size class: the bank repairs while restoring, the
		// per-object decoder afterwards.)
		bank, err := NewEHBank(dec.Config(), 1)
		if err != nil {
			t.Fatalf("bank for decoded config: %v", err)
		}
		_ = bank.UnmarshalCell(0, data)
		// On the decoded histogram's canonical re-encoding the two decoders
		// must agree exactly.
		canon := dec.Marshal()
		bank2, err := NewEHBank(dec.Config(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := bank2.UnmarshalCell(0, canon); err != nil {
			t.Fatalf("bank rejected canonical encoding: %v", err)
		}
		if got := bank2.EstimateWindow(0); got != w {
			t.Fatalf("bank decoded EstimateWindow %v, EH %v", got, w)
		}
		if got := bank2.EstimateSince(0, dec.Now()/2); got != dec.EstimateSince(dec.Now()/2) {
			t.Fatalf("bank EstimateSince %v, EH %v", got, dec.EstimateSince(dec.Now()/2))
		}
		dec.Add(dec.Now() + 1)
		_ = dec.EstimateSince(0)
	})
}

// FuzzMarshal drives the per-object EH and a flat-bank cell with the same
// arbitrary gap/count stream and checks the full serialization contract:
// both engines emit byte-identical encodings, and decoding that encoding —
// into either engine — reproduces the original answers. This is the
// regression net for the arena layout: any divergence in cascade, expiry or
// wire order shows up as a mismatch here.
func FuzzMarshal(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 5}, uint16(50))
	f.Add([]byte{0, 0, 0, 0}, uint16(0))
	f.Add([]byte{255, 1, 255, 1, 9, 9, 9}, uint16(1000))
	f.Fuzz(func(t *testing.T, gaps []byte, since uint16) {
		cfg := Config{Length: 300, Epsilon: 0.15}
		h, err := NewEH(cfg)
		if err != nil {
			t.Fatal(err)
		}
		bank, err := NewEHBank(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		var now Tick
		for _, g := range gaps {
			now += Tick(g % 11)
			n := uint64(g % 4) // n == 0 exercises the Advance path
			h.AddN(now, n)
			bank.AddN(1, now, n)
		}
		enc := h.Marshal()
		if got := func() []byte { enc, _ := bank.AppendMarshalCell(nil, 1, nil); return enc }(); !bytes.Equal(got, enc) {
			t.Fatalf("bank encoding (%d bytes) differs from EH encoding (%d bytes)", len(got), len(enc))
		}
		dec, err := UnmarshalEH(enc)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		bank2, err := NewEHBank(cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := bank2.UnmarshalCell(0, enc); err != nil {
			t.Fatalf("bank round-trip decode failed: %v", err)
		}
		q := Tick(since)
		want := h.EstimateSince(q)
		if got := dec.EstimateSince(q); got != want {
			t.Fatalf("decoded EH EstimateSince(%d) = %v, original %v", q, got, want)
		}
		if got := bank2.EstimateSince(0, q); got != want {
			t.Fatalf("decoded bank EstimateSince(%d) = %v, original %v", q, got, want)
		}
		if dec.Total() != h.Total() || bank2.Total(0) != h.Total() {
			t.Fatalf("total mismatch: original %d, EH %d, bank %d", h.Total(), dec.Total(), bank2.Total(0))
		}
	})
}

func FuzzUnmarshalDW(f *testing.F) {
	w, err := NewDW(Config{Length: 1000, Epsilon: 0.1, UpperBound: 2000})
	if err != nil {
		f.Fatal(err)
	}
	for i := Tick(1); i <= 500; i++ {
		w.Add(i)
	}
	fuzzSeeds(f, w.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalDW(data)
		if err != nil {
			return
		}
		if got := dec.EstimateWindow(); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
		dec.Add(dec.Now() + 1)
	})
}

func FuzzUnmarshalRW(f *testing.F) {
	w, err := NewRW(Config{Length: 1000, Epsilon: 0.25, Delta: 0.2, UpperBound: 2000, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	for i := Tick(1); i <= 300; i++ {
		w.Add(i)
	}
	fuzzSeeds(f, w.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalRW(data)
		if err != nil {
			return
		}
		if got := dec.EstimateWindow(); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
		dec.Add(dec.Now() + 1)
	})
}

// FuzzEHStream drives the histogram with arbitrary gap/count sequences and
// checks the accuracy invariant against the exact counter — the core
// correctness property under adversarial arrival patterns.
func FuzzEHStream(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 5}, uint16(50))
	f.Add([]byte{0, 0, 0, 0}, uint16(0))
	f.Add([]byte{255, 1, 255, 1}, uint16(1000))
	f.Fuzz(func(t *testing.T, gaps []byte, since uint16) {
		const eps = 0.2
		cfg := Config{Length: 400, Epsilon: eps}
		h, _ := NewEH(cfg)
		x, _ := NewExact(cfg)
		var now Tick
		for _, g := range gaps {
			now += Tick(g % 9)
			n := uint64(g%3 + 1)
			h.AddN(now, n)
			x.AddN(now, n)
		}
		got := h.EstimateSince(Tick(since))
		want := float64(x.CountSince(Tick(since)))
		if diff := got - want; diff > eps*want+0.5 || diff < -eps*want-0.5 {
			t.Fatalf("estimate %v vs exact %v exceeds ε=%v", got, want, eps)
		}
		if err := h.checkInvariant(); err != nil {
			t.Fatal(err)
		}
	})
}
