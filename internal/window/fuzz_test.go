package window

import (
	"testing"
)

// Fuzz targets: decoders must never panic on arbitrary bytes — they either
// reconstruct a queryable synopsis or return an error. `go test` exercises
// the seed corpus; `go test -fuzz=FuzzUnmarshalEH ./internal/window` digs
// deeper.

func fuzzSeeds(f *testing.F, enc []byte) {
	f.Add(enc)
	f.Add([]byte{})
	f.Add([]byte{0xE1})
	f.Add([]byte{0xE2, 0x00})
	f.Add([]byte{0xE3, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	if len(enc) > 4 {
		mut := append([]byte(nil), enc...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
		f.Add(enc[:len(enc)/2])
	}
}

func FuzzUnmarshalEH(f *testing.F) {
	h, err := NewEH(Config{Length: 1000, Epsilon: 0.1})
	if err != nil {
		f.Fatal(err)
	}
	for i := Tick(1); i <= 500; i++ {
		h.Add(i)
	}
	fuzzSeeds(f, h.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalEH(data)
		if err != nil {
			return
		}
		// Whatever decoded must answer queries without panicking and
		// respect basic sanity.
		if got := dec.EstimateWindow(); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
		dec.Add(dec.Now() + 1)
		_ = dec.EstimateSince(0)
	})
}

func FuzzUnmarshalDW(f *testing.F) {
	w, err := NewDW(Config{Length: 1000, Epsilon: 0.1, UpperBound: 2000})
	if err != nil {
		f.Fatal(err)
	}
	for i := Tick(1); i <= 500; i++ {
		w.Add(i)
	}
	fuzzSeeds(f, w.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalDW(data)
		if err != nil {
			return
		}
		if got := dec.EstimateWindow(); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
		dec.Add(dec.Now() + 1)
	})
}

func FuzzUnmarshalRW(f *testing.F) {
	w, err := NewRW(Config{Length: 1000, Epsilon: 0.25, Delta: 0.2, UpperBound: 2000, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	for i := Tick(1); i <= 300; i++ {
		w.Add(i)
	}
	fuzzSeeds(f, w.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := UnmarshalRW(data)
		if err != nil {
			return
		}
		if got := dec.EstimateWindow(); got < 0 {
			t.Fatalf("negative estimate %v", got)
		}
		dec.Add(dec.Now() + 1)
	})
}

// FuzzEHStream drives the histogram with arbitrary gap/count sequences and
// checks the accuracy invariant against the exact counter — the core
// correctness property under adversarial arrival patterns.
func FuzzEHStream(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 5}, uint16(50))
	f.Add([]byte{0, 0, 0, 0}, uint16(0))
	f.Add([]byte{255, 1, 255, 1}, uint16(1000))
	f.Fuzz(func(t *testing.T, gaps []byte, since uint16) {
		const eps = 0.2
		cfg := Config{Length: 400, Epsilon: eps}
		h, _ := NewEH(cfg)
		x, _ := NewExact(cfg)
		var now Tick
		for _, g := range gaps {
			now += Tick(g % 9)
			n := uint64(g%3 + 1)
			h.AddN(now, n)
			x.AddN(now, n)
		}
		got := h.EstimateSince(Tick(since))
		want := float64(x.CountSince(Tick(since)))
		if diff := got - want; diff > eps*want+0.5 || diff < -eps*want-0.5 {
			t.Fatalf("estimate %v vs exact %v exceeds ε=%v", got, want, eps)
		}
		if err := h.checkInvariant(); err != nil {
			t.Fatal(err)
		}
	})
}
