package window

import (
	"encoding/hex"
	"math"
	"testing"
)

// Golden-vector tests: the hex blobs below were produced by the per-object
// bucket-deque encoder that predates the flat arena engine. They pin the wire
// format across the layout refactor — serialized histograms from earlier
// commits must keep decoding, answering queries identically, and merging.

const (
	// ehGoldenHex encodes an ε=0.05, N=2^14 histogram fed 5000 bursty AddN
	// calls (deterministic stream, see the assertions for its fingerprint).
	ehGoldenHex = "e1008080019a9999999999a93f0000000000000000808001009b9c016c8118fd078004008608800400f6078004048308800400fe078004008504800200f903800202ff038002008304800200ff03800201fd038002008104800200fe03800207fb03800200ff03800200fd038002068004800200fc01800102ff018001008002800100fc0180010582028001008302800100fc01800101fe01800100ff01800100fc0180010481028001007e4002820140007d40007f40077a40008301400079400580014000820140007a4003860140003920023f20004320003f20013d20004120003e20073b20003f20003d20064020001c10021f10002010001c10052210002310001c10011e10001f10001c10042110002210000d08000f08070a08001308000908051008001208000a08031608000a08001208010e08000604070304000704000504060804000504000404050d04000304000304040b04000002070102000202000002030402000502000002060702000102000002020302000402000001000001050001060001000001070001000001000001010001020001000001"
	// ehSmallGoldenHex encodes an ε=0.1, N=1000 histogram holding 20 unit
	// buckets — small enough that no size-class merges have happened.
	ehSmallGoldenHex = "e100e8079a9999999999b93f0000000000000000e807003c0d030302030302030302030302030302030302030302030001030001030001030001030001030001"
)

func mustGolden(t *testing.T, h string) []byte {
	t.Helper()
	b, err := hex.DecodeString(h)
	if err != nil {
		t.Fatalf("corrupt golden hex: %v", err)
	}
	return b
}

func TestGoldenEHDecode(t *testing.T) {
	h, err := UnmarshalEH(mustGolden(t, ehGoldenHex))
	if err != nil {
		t.Fatalf("decoding golden EH: %v", err)
	}
	if got := h.Now(); got != 19995 {
		t.Errorf("Now = %d, want 19995", got)
	}
	if got := h.Total(); got != 8463 {
		t.Errorf("Total = %d, want 8463", got)
	}
	if got := h.NumBuckets(); got != 108 {
		t.Errorf("NumBuckets = %d, want 108", got)
	}
	if got := h.EstimateWindow(); math.Abs(got-8207) > 1e-9 {
		t.Errorf("EstimateWindow = %v, want 8207", got)
	}
	if got := h.EstimateSince(1000); math.Abs(got-8207) > 1e-9 {
		t.Errorf("EstimateSince(1000) = %v, want 8207", got)
	}
	// Re-encoding a decoded histogram must reproduce the golden bytes: the
	// flat engine writes the same wire format the deque engine wrote.
	if got := hex.EncodeToString(h.Marshal()); got != ehGoldenHex {
		t.Error("re-encoded golden EH differs from original bytes")
	}
}

func TestGoldenEHSmallDecodeAndMerge(t *testing.T) {
	h, err := UnmarshalEH(mustGolden(t, ehSmallGoldenHex))
	if err != nil {
		t.Fatalf("decoding golden EH: %v", err)
	}
	if got := h.EstimateWindow(); got != 20 {
		t.Errorf("EstimateWindow = %v, want 20", got)
	}
	// Golden histograms must keep participating in Theorem 4 merges.
	other, err := NewEH(Config{Length: 1000, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := Tick(1); i <= 20; i++ {
		other.Add(i*3 + 1)
	}
	m, err := MergeEH(Config{Length: 1000, Epsilon: 0.1}, h, other)
	if err != nil {
		t.Fatalf("merging golden EH: %v", err)
	}
	if got := m.EstimateWindow(); got != 40 {
		t.Errorf("merged EstimateWindow = %v, want 40", got)
	}
}
