package window

// Interval queries: estimate the arrivals inside an arbitrary sub-interval
// (from, to] of the window, not just a suffix. Every synopsis answers them
// as the difference of two suffix estimates,
//
//	count(from, to] = count(from, now] − count(to, now],
//
// which doubles the worst-case error to 2ε (each suffix carries its own
// straddling-bucket uncertainty). The paper's queries are suffixes — "the
// last r time units" — but dashboards routinely ask "between 9:00 and 9:05",
// so the library supports both and documents the error doubling.

// IntervalEstimator is implemented by all counters in this package.
type IntervalEstimator interface {
	EstimateSince(since Tick) float64
}

// EstimateInterval estimates arrivals with tick in (from, to] using two
// suffix queries against c. Results are clamped at zero (the two suffix
// estimates carry independent half-bucket corrections and may invert on
// near-empty intervals). The relative error is at most 2ε of the larger
// suffix count.
func EstimateInterval(c IntervalEstimator, from, to Tick) float64 {
	if to <= from {
		return 0
	}
	est := c.EstimateSince(from) - c.EstimateSince(to)
	if est < 0 {
		return 0
	}
	return est
}

// EstimateInterval estimates arrivals with tick in (from, to] — see the
// package-level EstimateInterval for error semantics.
func (h *EH) EstimateInterval(from, to Tick) float64 { return EstimateInterval(h, from, to) }

// EstimateInterval estimates arrivals with tick in (from, to].
func (w *DW) EstimateInterval(from, to Tick) float64 { return EstimateInterval(w, from, to) }

// EstimateInterval estimates arrivals with tick in (from, to].
func (w *RW) EstimateInterval(from, to Tick) float64 { return EstimateInterval(w, from, to) }

// CountInterval returns the exact count of arrivals with tick in (from, to].
func (x *Exact) CountInterval(from, to Tick) uint64 {
	if to <= from {
		return 0
	}
	a := x.CountSince(from)
	b := x.CountSince(to)
	if b > a {
		return 0
	}
	return a - b
}
