package window

import (
	"math/rand"
	"testing"
)

func TestEstimateIntervalExactSmall(t *testing.T) {
	h := mustEH(t, Config{Length: 1000, Epsilon: 0.1})
	for i := Tick(1); i <= 10; i++ {
		h.Add(i * 10)
	}
	// (25, 65]: arrivals at 30,40,50,60.
	if got := h.EstimateInterval(25, 65); got != 4 {
		t.Errorf("EstimateInterval(25,65) = %v, want 4", got)
	}
	if got := h.EstimateInterval(65, 25); got != 0 {
		t.Errorf("inverted interval = %v, want 0", got)
	}
	if got := h.EstimateInterval(30, 30); got != 0 {
		t.Errorf("empty interval = %v, want 0", got)
	}
}

func TestEstimateIntervalErrorBound(t *testing.T) {
	const eps = 0.1
	cfg := Config{Length: 5000, Epsilon: eps, UpperBound: 20000, Delta: 0.1}
	rng := rand.New(rand.NewSource(33))
	for _, algo := range []Algorithm{AlgoEH, AlgoDW} {
		c, err := New(algo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		x := mustExact(t, cfg)
		var now Tick
		for i := 0; i < 20000; i++ {
			now += Tick(rng.Intn(2))
			c.Add(now)
			x.Add(now)
		}
		type iv interface{ EstimateInterval(from, to Tick) float64 }
		est := c.(iv)
		for trial := 0; trial < 200; trial++ {
			var ws Tick
			if now > cfg.Length {
				ws = now - cfg.Length
			}
			from := ws + Tick(rng.Intn(int(now-ws)))
			to := from + Tick(rng.Intn(int(now-from))+1)
			got := est.EstimateInterval(from, to)
			want := float64(x.CountInterval(from, to))
			// Two suffix estimates: 2ε of the larger suffix count.
			suffix := float64(x.CountSince(from))
			if abs64(got-want) > 2*eps*suffix+1 {
				t.Errorf("%v: EstimateInterval(%d,%d) = %v, exact %v (suffix %v)",
					algo, from, to, got, want, suffix)
			}
		}
	}
}

func TestExactCountInterval(t *testing.T) {
	x := mustExact(t, Config{Length: 100})
	x.AddN(10, 2)
	x.AddN(20, 3)
	x.AddN(30, 4)
	if got := x.CountInterval(10, 30); got != 7 {
		t.Errorf("CountInterval(10,30) = %d, want 7", got)
	}
	if got := x.CountInterval(30, 10); got != 0 {
		t.Errorf("inverted = %d", got)
	}
}
