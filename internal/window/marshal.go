package window

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Serialization formats. Synopses are serialized when sites ship them to
// aggregators; the encoded size is what the distributed experiments charge
// as network volume. All formats are self-describing little-endian with
// varint-packed payloads.

const (
	wireEH byte = 0xE1
	wireDW byte = 0xE2
	wireRW byte = 0xE3
	// wireEHBare is the config-elided EH cell form used inside delta
	// payloads, where the receiving bank's own Config is authoritative:
	// tag, now, buckets — no embedded Config (~30 B saved per cell).
	// Standalone encodings (Marshal, AppendMarshalCell) keep the
	// self-describing wireEH form byte-for-byte.
	wireEHBare byte = 0xE4
	// wireDWBare / wireRWBare are the config-elided wave cell forms used
	// inside delta payloads, mirroring wireEHBare: the full wireDW/wireRW
	// body minus the embedded Config. Level/copy counts stay (one byte
	// each) as a cheap shape check against the receiving bank.
	wireDWBare byte = 0xE5
	wireRWBare byte = 0xE6
)

var errTruncated = errors.New("window: truncated encoding")

type wireWriter struct{ buf bytes.Buffer }

func (w *wireWriter) byte1(b byte) { w.buf.WriteByte(b) }

func (w *wireWriter) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf.Write(tmp[:n])
}

func (w *wireWriter) f64(v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	w.buf.Write(tmp[:])
}

type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) byte1() (byte, error) {
	if r.off >= len(r.b) {
		return 0, errTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	r.off += n
	return v, nil
}

func (r *wireReader) f64() (float64, error) {
	if r.off+8 > len(r.b) {
		return 0, errTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v, nil
}

func (w *wireWriter) config(c Config) {
	w.buf.Write(appendConfig(nil, c))
}

func (r *wireReader) config() (Config, error) {
	var c Config
	m, err := r.byte1()
	if err != nil {
		return c, err
	}
	c.Model = Model(m)
	if c.Length, err = r.uvarint(); err != nil {
		return c, err
	}
	if c.Epsilon, err = r.f64(); err != nil {
		return c, err
	}
	if c.Delta, err = r.f64(); err != nil {
		return c, err
	}
	if c.UpperBound, err = r.uvarint(); err != nil {
		return c, err
	}
	if c.Seed, err = r.uvarint(); err != nil {
		return c, err
	}
	return c, nil
}

// configEqual compares configurations field by field, with floats compared
// bitwise so that NaN-carrying (corrupt but decodable) configurations still
// compare equal to themselves after a round-trip.
func configEqual(a, b Config) bool {
	return a.Model == b.Model && a.Length == b.Length &&
		math.Float64bits(a.Epsilon) == math.Float64bits(b.Epsilon) &&
		math.Float64bits(a.Delta) == math.Float64bits(b.Delta) &&
		a.UpperBound == b.UpperBound && a.Seed == b.Seed
}

// appendConfig appends the Config wire encoding to dst. It is the single
// Config encoder (wireWriter.config delegates here); wireReader.config is
// its inverse.
func appendConfig(dst []byte, c Config) []byte {
	var tmp [8]byte
	dst = append(dst, byte(c.Model))
	dst = binary.AppendUvarint(dst, c.Length)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(c.Epsilon))
	dst = append(dst, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(c.Delta))
	dst = append(dst, tmp[:]...)
	dst = binary.AppendUvarint(dst, c.UpperBound)
	dst = binary.AppendUvarint(dst, c.Seed)
	return dst
}

// UvarintLen reports the encoded size of v under binary.AppendUvarint
// without producing the bytes: one byte per started 7-bit group. Wire-size
// accounting (the network volume a summary would cost to ship) sums these
// instead of building throwaway encodings.
func UvarintLen(v uint64) int {
	return (bits.Len64(v|1) + 6) / 7
}

// configSize is the encoded size of a Config under appendConfig: model
// byte, two float64s, and three uvarints.
func configSize(c Config) int {
	return 1 + 8 + 8 + UvarintLen(c.Length) + UvarintLen(c.UpperBound) + UvarintLen(c.Seed)
}

// MarshalCellSize reports len of the encoding AppendMarshalCell would
// produce for cell i, without materializing buckets or bytes. It walks the
// level directories in the same oldest→newest order the encoder uses, since
// the delta encoding's varint widths depend on that order.
func (b *EHBank) MarshalCellSize(i int) int {
	n := 1 + configSize(b.cfg) + UvarintLen(b.cells[i].now)
	n += UvarintLen(uint64(b.NumBuckets(i)))
	var prev Tick
	c := &b.cells[i]
	for lv := int(c.nLv) - 1; lv >= 0; lv-- {
		d := b.level(i, lv)
		size := uint64(1) << uint(lv)
		for j := 0; j < int(d.n); j++ {
			bk := b.at(d, j)
			n += UvarintLen(bk.start-prev) + UvarintLen(bk.end-bk.start) + UvarintLen(size)
			prev = bk.end
		}
	}
	return n
}

// appendEHBuckets appends the delta-encoded bucket payload shared by the
// per-object and flat-bank EH encoders: boundaries are delta-encoded in
// arrival order, so a typical bucket costs a handful of bytes.
func appendEHBuckets(dst []byte, bs []Bucket) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(bs)))
	var prev Tick
	for _, b := range bs {
		dst = binary.AppendUvarint(dst, b.Start-prev)
		dst = binary.AppendUvarint(dst, b.End-b.Start)
		dst = binary.AppendUvarint(dst, b.Size)
		prev = b.End
	}
	return dst
}

// Marshal encodes the histogram.
func (h *EH) Marshal() []byte {
	dst := []byte{wireEH}
	dst = appendConfig(dst, h.cfg)
	dst = binary.AppendUvarint(dst, h.now)
	return appendEHBuckets(dst, h.Buckets()) // oldest → newest, ticks non-decreasing
}

// AppendMarshalCell appends cell i's encoding to dst, snapshotting the
// cell's buckets into scratch (grown as needed and returned for reuse
// across cells). A bank cell and an EH holding the same content encode to
// byte-identical output — both funnel through appendEHBuckets — so flat
// sketches serialize onto the exact wire format of the per-object engine.
//
// The bank itself is only read: with a caller-owned scratch, concurrent
// marshals of a frozen bank (the sharded engine's published views) need no
// coordination.
func (b *EHBank) AppendMarshalCell(dst []byte, i int, scratch []Bucket) ([]byte, []Bucket) {
	dst = append(dst, wireEH)
	dst = appendConfig(dst, b.cfg)
	dst = binary.AppendUvarint(dst, b.cells[i].now)
	scratch = b.AppendBuckets(scratch[:0], i)
	return appendEHBuckets(dst, scratch), scratch
}

// AppendMarshalCellBare appends cell i's config-elided encoding (wireEHBare)
// to dst: tag, now, buckets. Delta payloads carry one cell per changed
// index, so repeating the shared bank Config per cell would roughly double
// a sparse delta pre-gzip; the receiver validated config identity when it
// accepted the baseline snapshot, and UnmarshalCell trusts its own bank's
// Config for bare cells.
func (b *EHBank) AppendMarshalCellBare(dst []byte, i int, scratch []Bucket) ([]byte, []Bucket) {
	dst = append(dst, wireEHBare)
	dst = binary.AppendUvarint(dst, b.cells[i].now)
	scratch = b.AppendBuckets(scratch[:0], i)
	return appendEHBuckets(dst, scratch), scratch
}

// UnmarshalCell decodes an EH encoding (as written by EH.Marshal,
// AppendMarshalCell or AppendMarshalCellBare) into cell i, which must be
// empty. A full-form encoding embeds its Config, which must match the
// bank's: bank cells share one Config by construction, so a mismatch means
// the encoding belongs to a different synopsis. A bare encoding carries no
// Config and inherits the bank's.
func (b *EHBank) UnmarshalCell(i int, enc []byte) error {
	r := wireReader{b: enc}
	tag, err := r.byte1()
	if err != nil {
		return err
	}
	switch tag {
	case wireEH:
		cfg, err := r.config()
		if err != nil {
			return err
		}
		if !configEqual(cfg, b.cfg) {
			return fmt.Errorf("window: EH encoding config %+v does not match bank config %+v", cfg, b.cfg)
		}
	case wireEHBare:
		// Config elided; the bank's own is authoritative.
	default:
		return fmt.Errorf("window: expected EH encoding, got tag 0x%02x", tag)
	}
	now, err := r.uvarint()
	if err != nil {
		return err
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > uint64(len(enc)) { // cheap corruption guard: ≥1 byte per bucket
		return errors.New("window: corrupt EH encoding")
	}
	var prev Tick
	for j := uint64(0); j < n; j++ {
		ds, err := r.uvarint()
		if err != nil {
			return err
		}
		de, err := r.uvarint()
		if err != nil {
			return err
		}
		size, err := r.uvarint()
		if err != nil {
			return err
		}
		start := prev + ds
		end := start + de
		prev = end
		b.RestoreBucket(i, Bucket{Start: start, End: end, Size: size})
	}
	b.NormalizeRestored(i)
	b.Advance(i, now)
	return nil
}

// UnmarshalEH reconstructs a histogram from Marshal output. The
// reconstruction replays the buckets directly (not via the half/half merge
// split), so the decoded histogram answers queries identically to the
// encoded one.
func UnmarshalEH(b []byte) (*EH, error) {
	r := wireReader{b: b}
	tag, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if tag != wireEH {
		return nil, fmt.Errorf("window: expected EH encoding, got tag 0x%02x", tag)
	}
	cfg, err := r.config()
	if err != nil {
		return nil, err
	}
	now, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(b)) { // cheap corruption guard: ≥1 byte per bucket
		return nil, errors.New("window: corrupt EH encoding")
	}
	h, err := NewEH(cfg)
	if err != nil {
		return nil, err
	}
	var prev Tick
	for i := uint64(0); i < n; i++ {
		ds, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		de, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		size, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		start := prev + ds
		end := start + de
		prev = end
		h.restoreBucket(bucketRestore{start: start, end: end, size: size})
	}
	h.normalizeRestored()
	h.Advance(now)
	return h, nil
}

// bucketRestore carries a decoded bucket during reconstruction.
type bucketRestore struct {
	start, end Tick
	size       uint64
}

// restoreBucket appends a decoded bucket into its size class directly,
// bypassing the cascade: Marshal emits buckets from a valid histogram, so
// the class populations already satisfy the invariant.
func (h *EH) restoreBucket(b bucketRestore) {
	lv := 0
	for s := b.size; s > 1; s >>= 1 {
		lv++
	}
	for len(h.levels) <= lv {
		h.levels = append(h.levels, bucketDeque{})
	}
	h.levels[lv].pushBack(bucket{start: b.start, end: b.end})
	h.total += uint64(1) << uint(lv)
	if b.end > h.now {
		h.now = b.end
	}
	h.started = true
}

// normalizeRestored re-checks class budgets after a restore; decoded
// histograms are already canonical, so this is a defensive no-op loop that
// repairs corrupt inputs instead of violating internal invariants.
func (h *EH) normalizeRestored() {
	for lv := 0; lv < len(h.levels); lv++ {
		for h.levels[lv].len() > h.capPerLv {
			older := h.levels[lv].popFront()
			newer := h.levels[lv].popFront()
			if lv+1 == len(h.levels) {
				h.levels = append(h.levels, bucketDeque{})
			}
			h.levels[lv+1].pushBack(bucket{start: older.start, end: newer.end})
		}
	}
}

// Marshal encodes the wave: per-level entry lists with delta-encoded ticks
// and ranks.
func (w *DW) Marshal() []byte {
	var wr wireWriter
	wr.byte1(wireDW)
	wr.config(w.cfg)
	wr.uvarint(w.now)
	wr.uvarint(w.rank)
	wr.uvarint(uint64(len(w.levels)))
	for j := range w.levels {
		d := &w.levels[j]
		wr.uvarint(uint64(d.n))
		if d.evicted {
			wr.byte1(1)
		} else {
			wr.byte1(0)
		}
		var pt Tick
		var pr uint64
		for i := 0; i < d.n; i++ {
			e := d.at(i)
			wr.uvarint(e.t - pt)
			wr.uvarint(e.rank - pr)
			pt, pr = e.t, e.rank
		}
	}
	return wr.buf.Bytes()
}

// UnmarshalDW reconstructs a wave from Marshal output.
func UnmarshalDW(b []byte) (*DW, error) {
	r := wireReader{b: b}
	tag, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if tag != wireDW {
		return nil, fmt.Errorf("window: expected DW encoding, got tag 0x%02x", tag)
	}
	cfg, err := r.config()
	if err != nil {
		return nil, err
	}
	now, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	rank, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nl, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	w, err := NewDW(cfg)
	if err != nil {
		return nil, err
	}
	if nl != uint64(len(w.levels)) {
		return nil, fmt.Errorf("window: DW encoding has %d levels, config implies %d", nl, len(w.levels))
	}
	for j := uint64(0); j < nl; j++ {
		cnt, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		ev, err := r.byte1()
		if err != nil {
			return nil, err
		}
		if cnt > uint64(len(b)) {
			return nil, errors.New("window: corrupt DW encoding")
		}
		d := &w.levels[j]
		var pt Tick
		var pr uint64
		for i := uint64(0); i < cnt; i++ {
			dt, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			dr, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			pt += dt
			pr += dr
			d.pushBack(waveEntry{t: pt, rank: pr})
		}
		d.evicted = ev == 1
	}
	w.rank = rank
	w.now = now
	return w, nil
}

// AppendMarshalCell appends cell i's encoding to dst. A bank cell and a DW
// holding the same content encode to byte-identical output — both emit the
// wireDW layout in the same level order — so flat sketches serialize onto
// the exact wire format of the per-object engine. The bank is only read.
func (b *DWBank) AppendMarshalCell(dst []byte, i int) []byte {
	dst = append(dst, wireDW)
	dst = appendConfig(dst, b.cfg)
	return b.appendCellBody(dst, i)
}

// AppendMarshalCellBare appends cell i's config-elided encoding (wireDWBare)
// to dst for delta payloads; see AppendMarshalCellBare on EHBank.
func (b *DWBank) AppendMarshalCellBare(dst []byte, i int) []byte {
	dst = append(dst, wireDWBare)
	return b.appendCellBody(dst, i)
}

func (b *DWBank) appendCellBody(dst []byte, i int) []byte {
	c := &b.cells[i]
	dst = binary.AppendUvarint(dst, c.now)
	dst = binary.AppendUvarint(dst, c.rank)
	dst = binary.AppendUvarint(dst, uint64(b.nLv))
	base := i * b.nLv
	for j := 0; j < b.nLv; j++ {
		d := &b.dirs[base+j]
		dst = binary.AppendUvarint(dst, uint64(d.n))
		if d.evicted {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		var pt Tick
		var pr uint64
		for k := 0; k < int(d.n); k++ {
			e := b.waveAt(d, k)
			dst = binary.AppendUvarint(dst, e.t-pt)
			dst = binary.AppendUvarint(dst, e.rank-pr)
			pt, pr = e.t, e.rank
		}
	}
	return dst
}

// MarshalCellSize reports len of the encoding AppendMarshalCell would
// produce for cell i, without producing the bytes.
func (b *DWBank) MarshalCellSize(i int) int {
	c := &b.cells[i]
	n := 1 + configSize(b.cfg) + UvarintLen(c.now) + UvarintLen(c.rank) + UvarintLen(uint64(b.nLv))
	base := i * b.nLv
	for j := 0; j < b.nLv; j++ {
		d := &b.dirs[base+j]
		n += UvarintLen(uint64(d.n)) + 1
		var pt Tick
		var pr uint64
		for k := 0; k < int(d.n); k++ {
			e := b.waveAt(d, k)
			n += UvarintLen(e.t-pt) + UvarintLen(e.rank-pr)
			pt, pr = e.t, e.rank
		}
	}
	return n
}

// UnmarshalCell decodes a DW encoding (as written by DW.Marshal,
// AppendMarshalCell or AppendMarshalCellBare) into cell i, which must be
// empty. Full-form encodings embed their Config, which must match the
// bank's; bare encodings inherit it. The level count must match the bank's
// geometry either way.
func (b *DWBank) UnmarshalCell(i int, enc []byte) error {
	r := wireReader{b: enc}
	tag, err := r.byte1()
	if err != nil {
		return err
	}
	switch tag {
	case wireDW:
		cfg, err := r.config()
		if err != nil {
			return err
		}
		if !configEqual(cfg, b.cfg) {
			return fmt.Errorf("window: DW encoding config %+v does not match bank config %+v", cfg, b.cfg)
		}
	case wireDWBare:
		// Config elided; the bank's own is authoritative.
	default:
		return fmt.Errorf("window: expected DW encoding, got tag 0x%02x", tag)
	}
	now, err := r.uvarint()
	if err != nil {
		return err
	}
	rank, err := r.uvarint()
	if err != nil {
		return err
	}
	nl, err := r.uvarint()
	if err != nil {
		return err
	}
	if nl != uint64(b.nLv) {
		return fmt.Errorf("window: DW encoding has %d levels, bank implies %d", nl, b.nLv)
	}
	c := &b.cells[i]
	base := i * b.nLv
	oldest := emptyOldEnd
	for j := 0; j < b.nLv; j++ {
		cnt, err := r.uvarint()
		if err != nil {
			return err
		}
		ev, err := r.byte1()
		if err != nil {
			return err
		}
		if cnt > uint64(len(enc)) {
			return errors.New("window: corrupt DW encoding")
		}
		d := &b.dirs[base+j]
		var pt Tick
		var pr uint64
		for k := uint64(0); k < cnt; k++ {
			dt, err := r.uvarint()
			if err != nil {
				return err
			}
			dr, err := r.uvarint()
			if err != nil {
				return err
			}
			pt += dt
			pr += dr
			b.wavePush(d, waveEntry{t: pt, rank: pr})
		}
		d.evicted = ev == 1
		if d.n > 0 {
			if f := b.waveFront(d).t; f < oldest {
				oldest = f
			}
		}
	}
	c.rank = rank
	c.now = now
	c.oldEnd = oldest
	b.noteCellMutation(i)
	return nil
}

// Marshal encodes the randomized wave: per-copy, per-level entry lists with
// delta-encoded ticks and raw identifiers. Identifiers are incompressible,
// which is the dominant reason RW transfer volume exceeds EH by an order of
// magnitude in the distributed experiments.
func (w *RW) Marshal() []byte {
	var wr wireWriter
	wr.byte1(wireRW)
	wr.config(w.cfg)
	wr.uvarint(w.now)
	wr.uvarint(w.count)
	wr.uvarint(w.salt)
	wr.uvarint(w.seq)
	wr.uvarint(uint64(len(w.copies)))
	wr.uvarint(uint64(len(w.copies[0].levels)))
	for r := range w.copies {
		cp := &w.copies[r]
		for j := range cp.levels {
			d := &cp.levels[j]
			wr.uvarint(uint64(d.n))
			if d.evicted {
				wr.byte1(1)
			} else {
				wr.byte1(0)
			}
			var pt Tick
			for i := 0; i < d.n; i++ {
				e := d.at(i)
				wr.uvarint(e.t - pt)
				wr.uvarint(e.id)
				pt = e.t
			}
		}
	}
	return wr.buf.Bytes()
}

// UnmarshalRW reconstructs a randomized wave from Marshal output.
func UnmarshalRW(b []byte) (*RW, error) {
	r := wireReader{b: b}
	tag, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if tag != wireRW {
		return nil, fmt.Errorf("window: expected RW encoding, got tag 0x%02x", tag)
	}
	cfg, err := r.config()
	if err != nil {
		return nil, err
	}
	now, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	salt, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	seq, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	ncopies, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nlevels, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	w, err := NewRW(cfg)
	if err != nil {
		return nil, err
	}
	if ncopies != uint64(len(w.copies)) || nlevels != uint64(len(w.copies[0].levels)) {
		return nil, fmt.Errorf("window: RW encoding shape %dx%d, config implies %dx%d",
			ncopies, nlevels, len(w.copies), len(w.copies[0].levels))
	}
	for cr := range w.copies {
		cp := &w.copies[cr]
		for j := range cp.levels {
			cnt, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			ev, err := r.byte1()
			if err != nil {
				return nil, err
			}
			if cnt > uint64(len(b)) {
				return nil, errors.New("window: corrupt RW encoding")
			}
			d := &cp.levels[j]
			var pt Tick
			for i := uint64(0); i < cnt; i++ {
				dt, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				id, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				pt += dt
				d.pushBack(rwEntry{t: pt, id: id})
			}
			d.evicted = ev == 1
		}
	}
	w.now = now
	w.count = count
	w.salt = salt
	w.seq = seq
	return w, nil
}

// AppendMarshalCell appends cell i's encoding to dst. A bank cell and an RW
// holding the same content (including salt and sequence) encode to
// byte-identical output.
func (b *RWBank) AppendMarshalCell(dst []byte, i int) []byte {
	dst = append(dst, wireRW)
	dst = appendConfig(dst, b.cfg)
	return b.appendCellBody(dst, i)
}

// AppendMarshalCellBare appends cell i's config-elided encoding (wireRWBare)
// to dst for delta payloads; see AppendMarshalCellBare on EHBank.
func (b *RWBank) AppendMarshalCellBare(dst []byte, i int) []byte {
	dst = append(dst, wireRWBare)
	return b.appendCellBody(dst, i)
}

func (b *RWBank) appendCellBody(dst []byte, i int) []byte {
	c := &b.cells[i]
	dst = binary.AppendUvarint(dst, c.now)
	dst = binary.AppendUvarint(dst, c.count)
	dst = binary.AppendUvarint(dst, c.salt)
	dst = binary.AppendUvarint(dst, c.seq)
	dst = binary.AppendUvarint(dst, uint64(b.reps))
	dst = binary.AppendUvarint(dst, uint64(b.nLv))
	base := i * b.reps * b.nLv
	for rj := 0; rj < b.reps*b.nLv; rj++ {
		d := &b.dirs[base+rj]
		dst = binary.AppendUvarint(dst, uint64(d.n))
		if d.evicted {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		var pt Tick
		for k := 0; k < int(d.n); k++ {
			e := b.rwAt(d, k)
			dst = binary.AppendUvarint(dst, e.t-pt)
			dst = binary.AppendUvarint(dst, e.id)
			pt = e.t
		}
	}
	return dst
}

// MarshalCellSize reports len of the encoding AppendMarshalCell would
// produce for cell i, without producing the bytes.
func (b *RWBank) MarshalCellSize(i int) int {
	c := &b.cells[i]
	n := 1 + configSize(b.cfg) + UvarintLen(c.now) + UvarintLen(c.count) +
		UvarintLen(c.salt) + UvarintLen(c.seq) +
		UvarintLen(uint64(b.reps)) + UvarintLen(uint64(b.nLv))
	base := i * b.reps * b.nLv
	for rj := 0; rj < b.reps*b.nLv; rj++ {
		d := &b.dirs[base+rj]
		n += UvarintLen(uint64(d.n)) + 1
		var pt Tick
		for k := 0; k < int(d.n); k++ {
			e := b.rwAt(d, k)
			n += UvarintLen(e.t-pt) + UvarintLen(e.id)
			pt = e.t
		}
	}
	return n
}

// UnmarshalCell decodes an RW encoding (as written by RW.Marshal,
// AppendMarshalCell or AppendMarshalCellBare) into cell i, which must be
// empty. Full-form encodings embed their Config, which must match the
// bank's; bare encodings inherit it. The copy/level shape must match the
// bank's geometry either way.
func (b *RWBank) UnmarshalCell(i int, enc []byte) error {
	r := wireReader{b: enc}
	tag, err := r.byte1()
	if err != nil {
		return err
	}
	switch tag {
	case wireRW:
		cfg, err := r.config()
		if err != nil {
			return err
		}
		if !configEqual(cfg, b.cfg) {
			return fmt.Errorf("window: RW encoding config %+v does not match bank config %+v", cfg, b.cfg)
		}
	case wireRWBare:
		// Config elided; the bank's own is authoritative.
	default:
		return fmt.Errorf("window: expected RW encoding, got tag 0x%02x", tag)
	}
	now, err := r.uvarint()
	if err != nil {
		return err
	}
	count, err := r.uvarint()
	if err != nil {
		return err
	}
	salt, err := r.uvarint()
	if err != nil {
		return err
	}
	seq, err := r.uvarint()
	if err != nil {
		return err
	}
	ncopies, err := r.uvarint()
	if err != nil {
		return err
	}
	nlevels, err := r.uvarint()
	if err != nil {
		return err
	}
	if ncopies != uint64(b.reps) || nlevels != uint64(b.nLv) {
		return fmt.Errorf("window: RW encoding shape %dx%d, bank implies %dx%d",
			ncopies, nlevels, b.reps, b.nLv)
	}
	c := &b.cells[i]
	base := i * b.reps * b.nLv
	oldest := emptyOldEnd
	for rj := 0; rj < b.reps*b.nLv; rj++ {
		cnt, err := r.uvarint()
		if err != nil {
			return err
		}
		ev, err := r.byte1()
		if err != nil {
			return err
		}
		if cnt > uint64(len(enc)) {
			return errors.New("window: corrupt RW encoding")
		}
		d := &b.dirs[base+rj]
		var pt Tick
		for k := uint64(0); k < cnt; k++ {
			dt, err := r.uvarint()
			if err != nil {
				return err
			}
			id, err := r.uvarint()
			if err != nil {
				return err
			}
			pt += dt
			b.rwPush(d, rwEntry{t: pt, id: id})
		}
		d.evicted = ev == 1
		if d.n > 0 {
			if f := b.rwFront(d).t; f < oldest {
				oldest = f
			}
		}
	}
	c.now = now
	c.count = count
	c.salt = salt
	c.seq = seq
	c.oldEnd = oldest
	b.noteCellMutation(i)
	return nil
}
