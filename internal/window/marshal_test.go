package window

import (
	"math/rand"
	"testing"
)

// fillCounter drives a counter with a reproducible random stream.
func fillCounter(c Counter, events int, seed int64) Tick {
	rng := rand.New(rand.NewSource(seed))
	var now Tick
	for i := 0; i < events; i++ {
		now += Tick(rng.Intn(3))
		c.Add(now)
	}
	return now
}

func queriesAgree(t *testing.T, name string, a, b Counter, now Tick) {
	t.Helper()
	for _, since := range []Tick{0, now / 4, now / 2, now - 1, now} {
		ga, gb := a.EstimateSince(since), b.EstimateSince(since)
		if ga != gb {
			t.Errorf("%s: EstimateSince(%d) decoded=%v original=%v", name, since, gb, ga)
		}
	}
	if a.Now() != b.Now() {
		t.Errorf("%s: Now decoded=%d original=%d", name, b.Now(), a.Now())
	}
}

func TestEHMarshalRoundTrip(t *testing.T) {
	h := mustEH(t, Config{Length: 2000, Epsilon: 0.1, Seed: 9})
	now := fillCounter(h, 5000, 13)
	enc := h.Marshal()
	dec, err := UnmarshalEH(enc)
	if err != nil {
		t.Fatalf("UnmarshalEH: %v", err)
	}
	queriesAgree(t, "EH", h, dec, now)
	if dec.Total() != h.Total() {
		t.Errorf("Total decoded=%d original=%d", dec.Total(), h.Total())
	}
}

func TestEHMarshalEmpty(t *testing.T) {
	h := mustEH(t, Config{Length: 100, Epsilon: 0.1})
	dec, err := UnmarshalEH(h.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalEH(empty): %v", err)
	}
	if dec.EstimateWindow() != 0 {
		t.Errorf("decoded empty EstimateWindow = %v", dec.EstimateWindow())
	}
}

func TestDWMarshalRoundTrip(t *testing.T) {
	w := mustDW(t, Config{Length: 2000, Epsilon: 0.1, UpperBound: 8000})
	now := fillCounter(w, 5000, 19)
	dec, err := UnmarshalDW(w.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalDW: %v", err)
	}
	queriesAgree(t, "DW", w, dec, now)
}

func TestRWMarshalRoundTrip(t *testing.T) {
	w := mustRW(t, Config{Length: 2000, Epsilon: 0.2, Delta: 0.1, UpperBound: 8000, Seed: 4})
	now := fillCounter(w, 5000, 29)
	dec, err := UnmarshalRW(w.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalRW: %v", err)
	}
	queriesAgree(t, "RW", w, dec, now)
	// A decoded wave must remain mergeable with the original lineage.
	if !w.Mergeable(dec) {
		t.Error("decoded RW not mergeable with original")
	}
}

func TestUnmarshalRejectsWrongTag(t *testing.T) {
	h := mustEH(t, Config{Length: 100, Epsilon: 0.1})
	enc := h.Marshal()
	if _, err := UnmarshalDW(enc); err == nil {
		t.Error("UnmarshalDW accepted an EH encoding")
	}
	if _, err := UnmarshalRW(enc); err == nil {
		t.Error("UnmarshalRW accepted an EH encoding")
	}
}

func TestUnmarshalRejectsTruncated(t *testing.T) {
	h := mustEH(t, Config{Length: 2000, Epsilon: 0.1})
	fillCounter(h, 1000, 7)
	enc := h.Marshal()
	for _, cut := range []int{0, 1, 5, len(enc) / 2, len(enc) - 1} {
		if _, err := UnmarshalEH(enc[:cut]); err == nil {
			t.Errorf("UnmarshalEH accepted truncation to %d bytes", cut)
		}
	}
}

func TestEHEncodingCompact(t *testing.T) {
	// Dense arrivals delta-encode to a few bytes per bucket; the encoding of
	// a 1e4-arrival histogram should be well under a kilobyte.
	h := mustEH(t, Config{Length: 1 << 20, Epsilon: 0.1})
	for i := Tick(1); i <= 10000; i++ {
		h.Add(i)
	}
	if n := len(h.Marshal()); n > 2048 {
		t.Errorf("EH encoding is %d bytes for %d buckets, want ≤ 2048", n, h.NumBuckets())
	}
}

func TestRWEncodingMuchLargerThanEH(t *testing.T) {
	// The Fig. 5/6 premise: at equal ε, RW transfer volume dwarfs EH's.
	cfg := Config{Length: 1 << 16, Epsilon: 0.1, Delta: 0.1, UpperBound: 1 << 16, Seed: 8}
	h := mustEH(t, cfg)
	w := mustRW(t, cfg)
	for i := Tick(1); i <= 1<<15; i++ {
		h.Add(i)
		w.AddID(i, uint64(i))
	}
	he, we := len(h.Marshal()), len(w.Marshal())
	if we < 5*he {
		t.Errorf("RW encoding %dB vs EH %dB; expected ≥5× gap", we, he)
	}
}

func TestMarshalRoundTripPreservesMerge(t *testing.T) {
	// Serialization must compose with aggregation: decode-then-merge equals
	// merge of the originals.
	cfg := Config{Length: 2000, Epsilon: 0.1}
	a := mustEH(t, cfg)
	b := mustEH(t, cfg)
	fillCounter(a, 3000, 5)
	fillCounter(b, 3000, 6)
	da, err := UnmarshalEH(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	db, err := UnmarshalEH(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := MergeEH(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MergeEH(cfg, da, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Tick{2000, 1000, 400} {
		if g1, g2 := m1.EstimateRange(r), m2.EstimateRange(r); g1 != g2 {
			t.Errorf("merge-of-decoded EstimateRange(%d)=%v, merge-of-original=%v", r, g2, g1)
		}
	}
}
