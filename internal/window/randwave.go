package window

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"ecmsketch/internal/hashing"
)

// rwEntry is one stored event of a randomized wave: its tick and its unique
// event identifier. The identifier determines the event's level assignment,
// which is what makes randomized waves duplicate-insensitive and losslessly
// mergeable.
type rwEntry struct {
	t  Tick
	id uint64
}

// rwDeque is a bounded ring buffer of rwEntry ordered oldest to newest. Its
// logical capacity is fixed at construction (the randomized wave's Θ(1/ε²)
// level budget) but the backing array grows on demand, so an ECM-RW grid
// whose counters see few events does not pay the worst-case footprint up
// front.
type rwDeque struct {
	buf      []rwEntry
	head     int
	n        int
	capLimit int
	evicted  bool
}

func newRWDeque(capacity int) rwDeque { return rwDeque{capLimit: capacity} }

func (d *rwDeque) len() int { return d.n }

func (d *rwDeque) at(i int) rwEntry { return d.buf[(d.head+i)%len(d.buf)] }

func (d *rwDeque) front() rwEntry { return d.buf[d.head] }

func (d *rwDeque) pushBack(e rwEntry) {
	if d.n == len(d.buf) {
		if len(d.buf) < d.capLimit {
			d.grow()
		} else {
			d.head = (d.head + 1) % len(d.buf)
			d.n--
			d.evicted = true
		}
	}
	d.buf[(d.head+d.n)%len(d.buf)] = e
	d.n++
}

func (d *rwDeque) grow() {
	nc := len(d.buf) * 2
	if nc == 0 {
		nc = 8
	}
	if nc > d.capLimit {
		nc = d.capLimit
	}
	nb := make([]rwEntry, nc)
	for i := 0; i < d.n; i++ {
		nb[i] = d.at(i)
	}
	d.buf = nb
	d.head = 0
}

func (d *rwDeque) popFront() rwEntry {
	e := d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return e
}

func (d *rwDeque) searchTickAfter(s Tick) int {
	lo, hi := 0, d.n
	for lo < hi {
		mid := (lo + hi) / 2
		if d.at(mid).t > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// rwCopy is one independent repetition of the randomized wave. The final
// estimate is the median across copies, which drives the failure probability
// below δ.
type rwCopy struct {
	seed   uint64
	levels []rwDeque
}

// rwSaltCounter hands out distinct default identifier salts to RW instances
// created in the same process, so that events from different instances never
// collide.
var rwSaltCounter uint64

// RW is a randomized wave (Gibbons & Tirthapura) for duplicate-insensitive
// basic counting over a sliding window. Every event carries a unique
// identifier; a hash of the identifier assigns the event to level l with
// probability 2^-(l+1), and the event is stored in levels 0..l, each level
// keeping its most recent Θ(1/ε²) events. A suffix count is estimated at the
// finest level covering the query boundary as (events in range) · 2^level.
//
// Because the level assignment is a pure function of the event identifier,
// the position-wise union of several waves built with the same seed is again
// a wave, which is the lossless aggregation property exploited in Section
// 5.2 — at the cost of Θ(1/ε²) space instead of the deterministic synopses'
// Θ(1/ε).
type RW struct {
	cfg    Config
	c      int // capacity per level
	copies []rwCopy
	salt   uint64 // mixed into auto-generated event identifiers
	seq    uint64 // auto-identifier sequence
	now    Tick
	count  uint64 // arrivals since the beginning of the stream
}

// NewRW constructs a randomized wave providing an (ε,δ) approximation over a
// window of cfg.Length ticks, sized for cfg.UpperBound arrivals per window.
func NewRW(cfg Config) (*RW, error) {
	if err := cfg.Validate(AlgoRW); err != nil {
		return nil, err
	}
	c := rwCapacity(cfg.Epsilon)
	L := waveLevels(cfg.UpperBound, c)
	reps := rwRepetitions(cfg.Delta)
	w := &RW{
		cfg:    cfg,
		c:      c,
		copies: make([]rwCopy, reps),
		salt:   hashing.Mix64(atomic.AddUint64(&rwSaltCounter, 1) * 0x9e3779b97f4a7c15),
	}
	for r := range w.copies {
		w.copies[r].seed = hashing.Mix64(cfg.Seed ^ uint64(r+1)*0xD1B54A32D192ED03)
		w.copies[r].levels = make([]rwDeque, L+1)
		for j := range w.copies[r].levels {
			w.copies[r].levels[j] = newRWDeque(c)
		}
	}
	return w, nil
}

// rwCapacity is the per-level event budget; the quadratic dependence on 1/ε
// is inherent to randomized synopses and is what the paper's evaluation
// charges them for.
func rwCapacity(eps float64) int { return int(math.Ceil(4 / (eps * eps))) }

// rwRepetitions is the number of independent copies whose median estimate is
// returned.
func rwRepetitions(delta float64) int {
	r := int(math.Ceil(math.Log(1 / delta)))
	if r < 1 {
		r = 1
	}
	if r%2 == 0 {
		r++ // odd count makes the median well-defined
	}
	return r
}

// Config returns the configuration the wave was built with.
func (w *RW) Config() Config { return w.cfg }

// SetIDSalt overrides the salt mixed into auto-generated event identifiers.
// Waves merged together must have been fed events with globally unique
// identifiers; within one process the default per-instance salt guarantees
// that, while multi-process deployments should set an explicit site salt.
func (w *RW) SetIDSalt(salt uint64) { w.salt = salt }

// Add registers one arrival at tick t under an auto-generated unique
// identifier.
func (w *RW) Add(t Tick) {
	w.seq++
	w.AddID(t, hashing.Mix64(w.salt^w.seq))
}

// AddN registers n arrivals at tick t.
func (w *RW) AddN(t Tick, n uint64) {
	for i := uint64(0); i < n; i++ {
		w.Add(t)
	}
	if n == 0 {
		w.Advance(t)
	}
}

// AddID registers one arrival at tick t with an explicit unique event
// identifier. Feeding the same identifier twice leaves the estimate
// unchanged in expectation (duplicate insensitivity).
func (w *RW) AddID(t Tick, id uint64) {
	if t == 0 {
		t = 1 // ticks are 1-based
	}
	if t < w.now {
		t = w.now
	}
	w.now = t
	w.count++
	for r := range w.copies {
		cp := &w.copies[r]
		top := len(cp.levels) - 1
		l := hashing.GeometricLevel(cp.seed, id, top)
		e := rwEntry{t: t, id: id}
		for j := 0; j <= l; j++ {
			cp.levels[j].pushBack(e)
		}
	}
	w.expire()
}

// Advance moves the window to tick t, expiring old entries.
func (w *RW) Advance(t Tick) {
	if t > w.now {
		w.now = t
	}
	w.expire()
}

// Now reports the latest observed tick.
func (w *RW) Now() Tick { return w.now }

func (w *RW) expire() {
	if w.now < w.cfg.Length {
		return
	}
	cut := w.now - w.cfg.Length
	for r := range w.copies {
		cp := &w.copies[r]
		for j := range cp.levels {
			d := &cp.levels[j]
			for d.n > 0 && d.front().t <= cut {
				d.popFront()
			}
		}
	}
}

// EstimateSince estimates the number of arrivals with tick > since as the
// median of the per-copy estimates.
func (w *RW) EstimateSince(since Tick) float64 {
	if w.count == 0 {
		return 0
	}
	if w.now >= w.cfg.Length {
		if ws := w.now - w.cfg.Length; since < ws {
			since = ws
		}
	}
	ests := make([]float64, len(w.copies))
	for r := range w.copies {
		ests[r] = w.copies[r].estimate(since)
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

func (cp *rwCopy) estimate(since Tick) float64 {
	j := len(cp.levels) - 1
	for cand := 0; cand < len(cp.levels); cand++ {
		d := &cp.levels[cand]
		if !d.evicted || (d.n > 0 && d.front().t <= since) {
			j = cand
			break
		}
	}
	d := &cp.levels[j]
	m := d.n - d.searchTickAfter(since)
	return float64(m) * float64(uint64(1)<<uint(j))
}

// EstimateRange estimates arrivals within the last r ticks.
func (w *RW) EstimateRange(r Tick) float64 {
	r = clampRange(r, w.cfg.Length)
	return w.EstimateSince(rangeToSince(w.now, r))
}

// EstimateWindow estimates arrivals within the whole window.
func (w *RW) EstimateWindow() float64 { return w.EstimateRange(w.cfg.Length) }

// MemoryBytes reports the (fixed) heap footprint of the wave.
func (w *RW) MemoryBytes() int {
	const entryBytes = 16
	n := 96
	for r := range w.copies {
		for j := range w.copies[r].levels {
			n += 40 + cap(w.copies[r].levels[j].buf)*entryBytes
		}
	}
	return n
}

// Reset empties the wave, keeping its configuration and hash seeds.
func (w *RW) Reset() {
	for r := range w.copies {
		for j := range w.copies[r].levels {
			d := &w.copies[r].levels[j]
			d.head, d.n, d.evicted = 0, 0, false
		}
	}
	w.seq = 0
	w.count = 0
	w.now = 0
}

// Copies reports the number of independent repetitions.
func (w *RW) Copies() int { return len(w.copies) }

// Levels reports the number of levels per copy.
func (w *RW) Levels() int { return len(w.copies[0].levels) }

// Mergeable reports whether two waves share configuration and hash seeds and
// can therefore be losslessly aggregated.
func (w *RW) Mergeable(other *RW) bool {
	if other == nil || len(w.copies) != len(other.copies) {
		return false
	}
	if w.cfg.Epsilon != other.cfg.Epsilon || w.cfg.Delta != other.cfg.Delta ||
		w.cfg.Length != other.cfg.Length || w.cfg.Model != other.cfg.Model ||
		w.cfg.Seed != other.cfg.Seed {
		return false
	}
	for r := range w.copies {
		if w.copies[r].seed != other.copies[r].seed {
			return false
		}
	}
	return true
}

// MergeRW aggregates randomized waves built with identical configuration and
// seeds into a single wave covering the union of their events (Section 5.2).
// Level l of the output is the tick-sorted concatenation of the inputs'
// level-l entries, truncated to the most recent capacity; levels beyond the
// inputs' level count (needed when the combined stream exceeds one input's
// u(N,S)) are populated by re-deriving each event's level from its
// identifier, mirroring the paper's rehashing step. The accuracy guarantees
// of the output equal those of the inputs — aggregation is lossless.
func MergeRW(out Config, inputs ...*RW) (*RW, error) {
	if len(inputs) == 0 {
		return nil, errors.New("window: MergeRW requires at least one input")
	}
	first := inputs[0]
	for i, in := range inputs[1:] {
		if in == nil {
			return nil, fmt.Errorf("window: MergeRW input %d is nil", i+1)
		}
		if !first.Mergeable(in) {
			return nil, fmt.Errorf("window: MergeRW input %d has incompatible configuration or seeds", i+1)
		}
	}
	if out.Model != first.cfg.Model {
		return nil, errors.New("window: MergeRW output model must match inputs")
	}
	out.Epsilon = first.cfg.Epsilon
	out.Delta = first.cfg.Delta
	out.Length = first.cfg.Length
	out.Seed = first.cfg.Seed
	if out.UpperBound < first.cfg.UpperBound {
		var sum uint64
		for _, in := range inputs {
			sum += in.cfg.UpperBound
		}
		out.UpperBound = sum
	}
	merged, err := NewRW(out)
	if err != nil {
		return nil, err
	}
	var now Tick
	var count uint64
	for _, in := range inputs {
		if in.now > now {
			now = in.now
		}
		count += in.count
	}
	merged.now = now
	merged.count = count
	inLevels := first.Levels()
	for r := range merged.copies {
		mcp := &merged.copies[r]
		top := len(mcp.levels) - 1
		for j := 0; j < inLevels && j <= top; j++ {
			entries := collectLevel(inputs, r, j)
			for _, e := range entries {
				mcp.levels[j].pushBack(e)
			}
		}
		// Deeper levels than the inputs had: re-derive membership from the
		// event identifiers stored at the inputs' top level.
		if top >= inLevels {
			base := collectLevel(inputs, r, inLevels-1)
			for j := inLevels; j <= top; j++ {
				for _, e := range base {
					if hashing.GeometricLevel(mcp.seed, e.id, top) >= j {
						mcp.levels[j].pushBack(e)
					}
				}
			}
		}
	}
	merged.expire()
	return merged, nil
}

// collectLevel gathers level j of repetition r across all inputs, sorted by
// tick with duplicate identifiers removed (union semantics).
func collectLevel(inputs []*RW, r, j int) []rwEntry {
	var all []rwEntry
	for _, in := range inputs {
		d := &in.copies[r].levels[j]
		for i := 0; i < d.n; i++ {
			all = append(all, d.at(i))
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].t < all[b].t })
	seen := make(map[uint64]struct{}, len(all))
	out := all[:0]
	for _, e := range all {
		if _, dup := seen[e.id]; dup {
			continue
		}
		seen[e.id] = struct{}{}
		out = append(out, e)
	}
	return out
}
