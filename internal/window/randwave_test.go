package window

import (
	"math/rand"
	"testing"
)

func mustRW(t *testing.T, cfg Config) *RW {
	t.Helper()
	w, err := NewRW(cfg)
	if err != nil {
		t.Fatalf("NewRW: %v", err)
	}
	return w
}

func TestRWConfigValidation(t *testing.T) {
	if _, err := NewRW(Config{Length: 100, Epsilon: 0.1}); err == nil {
		t.Fatal("NewRW without Delta succeeded, want error")
	}
	if _, err := NewRW(Config{Length: 100, Epsilon: 0.1, Delta: 1.5}); err == nil {
		t.Fatal("NewRW with Delta > 1 succeeded, want error")
	}
}

func TestRWEmpty(t *testing.T) {
	w := mustRW(t, Config{Length: 100, Epsilon: 0.2, Delta: 0.1})
	if got := w.EstimateWindow(); got != 0 {
		t.Errorf("empty EstimateWindow = %v, want 0", got)
	}
}

func TestRWExactWhenSmall(t *testing.T) {
	// With fewer arrivals than level 0 holds, estimates are exact.
	w := mustRW(t, Config{Length: 1000, Epsilon: 0.2, Delta: 0.1})
	for i := Tick(1); i <= 10; i++ {
		w.Add(i * 7)
	}
	for since := Tick(0); since <= 80; since += 7 {
		want := 0.0
		for i := Tick(1); i <= 10; i++ {
			if i*7 > since {
				want++
			}
		}
		if got := w.EstimateSince(since); got != want {
			t.Errorf("EstimateSince(%d) = %v, want %v", since, got, want)
		}
	}
}

func TestRWAccuracy(t *testing.T) {
	// Probabilistic bound: check that the overwhelming majority of queries
	// land within ε, and that none are wildly off.
	const eps = 0.2
	rng := rand.New(rand.NewSource(9))
	cfg := Config{Length: 3000, Epsilon: eps, Delta: 0.05, UpperBound: 10000, Seed: 77}
	w := mustRW(t, cfg)
	x := mustExact(t, cfg)
	var now Tick
	bad := 0
	checks := 0
	for i := 0; i < 10000; i++ {
		now += Tick(rng.Intn(2))
		w.Add(now)
		x.Add(now)
		if i%101 == 0 && i > 500 {
			for _, r := range []Tick{3000, 1500, 700} {
				got := w.EstimateRange(r)
				want := float64(x.CountRange(r))
				if want < 50 {
					continue
				}
				checks++
				if abs64(got-want) > eps*want+1 {
					bad++
				}
				if abs64(got-want) > 4*eps*want+2 {
					t.Fatalf("RW estimate wildly off: got %v, exact %v (r=%d)", got, want, r)
				}
			}
		}
	}
	if checks == 0 {
		t.Fatal("no checks performed")
	}
	if frac := float64(bad) / float64(checks); frac > 0.1 {
		t.Errorf("RW exceeded ε on %.1f%% of %d checks, want ≤10%%", 100*frac, checks)
	}
}

func TestRWDuplicateInsensitive(t *testing.T) {
	cfg := Config{Length: 1000, Epsilon: 0.2, Delta: 0.1, Seed: 3}
	w := mustRW(t, cfg)
	for i := Tick(1); i <= 50; i++ {
		w.AddID(i, uint64(i)) // level assignment depends only on the id
	}
	before := w.EstimateWindow()
	// Re-adding the same identifiers must not change per-level membership
	// beyond replacing entries with equal ones.
	for i := Tick(1); i <= 50; i++ {
		w.AddID(i, uint64(i))
	}
	after := w.EstimateWindow()
	// The count field doubles but the estimate derives from stored entries;
	// duplicate ids map to identical levels so small windows stay exact-ish.
	if after > 2*before+10 {
		t.Errorf("duplicate inserts inflated estimate from %v to %v", before, after)
	}
}

func TestRWMergeLossless(t *testing.T) {
	// The defining property (§5.2): merging per-site waves gives the same
	// estimates as one wave that saw the union stream.
	const eps = 0.2
	cfg := Config{Length: 2000, Epsilon: eps, Delta: 0.1, UpperBound: 4000, Seed: 123}
	w1 := mustRW(t, cfg)
	w2 := mustRW(t, cfg)
	union := mustRW(t, cfg)
	x := mustExact(t, cfg)
	rng := rand.New(rand.NewSource(21))
	var now Tick
	var id uint64
	for i := 0; i < 6000; i++ {
		now += Tick(rng.Intn(2))
		id++
		eid := uint64(1e12) + id
		if rng.Intn(2) == 0 {
			w1.AddID(now, eid)
		} else {
			w2.AddID(now, eid)
		}
		union.AddID(now, eid)
		x.Add(now)
	}
	w1.Advance(now)
	w2.Advance(now)
	merged, err := MergeRW(cfg, w1, w2)
	if err != nil {
		t.Fatalf("MergeRW: %v", err)
	}
	for _, r := range []Tick{2000, 1000, 300} {
		mg := merged.EstimateRange(r)
		ug := union.EstimateRange(r)
		want := float64(x.CountRange(r))
		if want == 0 {
			continue
		}
		// Lossless: merged estimate equals the union-built wave's estimate.
		if abs64(mg-ug) > 1e-9 {
			t.Errorf("merged estimate %v != union estimate %v (r=%d)", mg, ug, r)
		}
		if abs64(mg-want) > 2*eps*want+2 {
			t.Errorf("merged estimate %v vs exact %v exceeds bound (r=%d)", mg, want, r)
		}
	}
}

func TestRWMergeRejectsIncompatible(t *testing.T) {
	a := mustRW(t, Config{Length: 100, Epsilon: 0.2, Delta: 0.1, Seed: 1})
	b := mustRW(t, Config{Length: 100, Epsilon: 0.2, Delta: 0.1, Seed: 2})
	if _, err := MergeRW(a.Config(), a, b); err == nil {
		t.Fatal("MergeRW accepted waves with different seeds")
	}
}

func TestRWMergeGrowsLevels(t *testing.T) {
	// When the combined stream exceeds one site's upper bound, the merged
	// wave gets more levels, populated by re-deriving event levels.
	small := Config{Length: 1000, Epsilon: 0.25, Delta: 0.2, UpperBound: 200, Seed: 5}
	w1 := mustRW(t, small)
	w2 := mustRW(t, small)
	for i := Tick(1); i <= 200; i++ {
		w1.AddID(i, uint64(i))
		w2.AddID(i, uint64(100000+i))
	}
	out := small
	out.UpperBound = 0 // force recomputation from the sum
	merged, err := MergeRW(out, w1, w2)
	if err != nil {
		t.Fatalf("MergeRW: %v", err)
	}
	if merged.Levels() < w1.Levels() {
		t.Errorf("merged wave has %d levels, inputs had %d", merged.Levels(), w1.Levels())
	}
	got := merged.EstimateWindow()
	if abs64(got-400) > 0.5*400 {
		t.Errorf("merged EstimateWindow = %v, want ≈400", got)
	}
}

func TestRWReset(t *testing.T) {
	w := mustRW(t, Config{Length: 100, Epsilon: 0.2, Delta: 0.1})
	for i := Tick(1); i <= 60; i++ {
		w.Add(i)
	}
	w.Reset()
	if w.EstimateWindow() != 0 {
		t.Errorf("EstimateWindow after Reset = %v, want 0", w.EstimateWindow())
	}
}

func TestRWMemoryQuadraticInEps(t *testing.T) {
	mem := func(eps float64) int {
		w := mustRW(t, Config{Length: 1 << 20, Epsilon: eps, Delta: 0.1, UpperBound: 1 << 20})
		for i := Tick(1); i <= 1<<15; i++ {
			w.AddID(i, uint64(i)) // fill so lazily allocated levels materialize
		}
		return w.MemoryBytes()
	}
	m10, m20 := mem(0.1), mem(0.2)
	// Halving ε should roughly quadruple memory (per-level capacity 1/ε²).
	if ratio := float64(m10) / float64(m20); ratio < 2.5 {
		t.Errorf("memory ratio eps 0.1 vs 0.2 = %.2f, want ≳ 2.5 (quadratic scaling)", ratio)
	}
}

func TestRWRepetitionsOdd(t *testing.T) {
	for _, d := range []float64{0.5, 0.1, 0.01} {
		if r := rwRepetitions(d); r%2 == 0 || r < 1 {
			t.Errorf("rwRepetitions(%v) = %d, want odd positive", d, r)
		}
	}
}
