package window

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ecmsketch/internal/hashing"
)

// This file implements the flat-memory randomized-wave engine: a bank of RW
// counters whose level rings all live in one contiguous arena, completing
// the EHBank/DWBank family (see arena.go for the design rationale).
//
// Randomized-wave levels have a Θ(1/ε²) capacity budget but usually hold far
// fewer events, so — like the per-object rwDeque — the bank grows each ring
// on demand: a level starts uncarved, is carved at 8 entries on its first
// push, and doubles (capped at the budget) by carving a fresh chunk at the
// slab end and abandoning the old one. Abandoned chunks are bounded by the
// doubling schedule to less than the live footprint and are reclaimed on
// Reset; Clone still copies the arena with three memcpys.
//
// The algorithm is deliberately identical to type RW — same per-copy seeds,
// same geometric level assignment, same eviction and expiry order, same
// median estimate — so a bank cell and an RW fed the same identifiers return
// bit-identical answers and marshal to byte-identical encodings.

// rwCell is the per-counter header of a randomized-wave bank. Each cell
// carries its own identifier salt and sequence like a per-object RW, so
// decoded encodings round-trip byte-identically.
type rwCell struct {
	now    Tick
	count  uint64 // arrivals since the beginning of the stream
	salt   uint64 // mixed into auto-generated event identifiers
	seq    uint64 // auto-identifier sequence
	oldEnd Tick   // conservative lower bound on the earliest stored tick
}

// rwLevel locates one level's ring inside the slab. off < 0 marks a level
// whose chunk has not been carved yet; capn is the carved chunk capacity.
type rwLevel struct {
	off     int32
	capn    int32
	head    int32
	n       int32
	evicted bool
}

// RWBank is a bank of n randomized-wave counters backed by one contiguous
// entry arena. All cells share the bank's per-copy hash seeds (they derive
// from Config.Seed, exactly as per-object waves constructed from the same
// Config would).
//
// RWBank is not safe for concurrent use.
type RWBank struct {
	cfg   Config
	c     int // capacity budget per level: ⌈4/ε²⌉
	reps  int // independent repetitions (median-of-copies)
	nLv   int // levels per copy (L+1), fixed by cfg at construction
	seeds []uint64
	cells []rwCell
	dirs  []rwLevel // cell i, copy r, level j at ((i*reps)+r)*nLv + j
	slab  []rwEntry

	// version/vers: identical change-tracking semantics to EHBank.
	version uint64
	vers    []uint64
}

// NewRWBank constructs a bank of n empty randomized waves providing an (ε,δ)
// approximation over a window of cfg.Length ticks. Each cell draws a
// process-unique default identifier salt, like per-object RW construction.
func NewRWBank(cfg Config, n int) (*RWBank, error) {
	if err := cfg.Validate(AlgoRW); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("window: bank size must be positive, got %d", n)
	}
	c := rwCapacity(cfg.Epsilon)
	L := waveLevels(cfg.UpperBound, c)
	reps := rwRepetitions(cfg.Delta)
	b := &RWBank{
		cfg:   cfg,
		c:     c,
		reps:  reps,
		nLv:   L + 1,
		seeds: make([]uint64, reps),
		cells: make([]rwCell, n),
		dirs:  make([]rwLevel, n*reps*(L+1)),
		vers:  make([]uint64, n),
	}
	for r := range b.seeds {
		b.seeds[r] = hashing.Mix64(cfg.Seed ^ uint64(r+1)*0xD1B54A32D192ED03)
	}
	for i := range b.cells {
		b.cells[i].salt = hashing.Mix64(atomic.AddUint64(&rwSaltCounter, 1) * 0x9e3779b97f4a7c15)
	}
	for i := range b.dirs {
		b.dirs[i].off = -1
	}
	return b, nil
}

// Version reports the bank's arrival-mutation counter (see EHBank.Version).
func (b *RWBank) Version() uint64 { return b.version }

// CellChangedSince reports whether cell i's content changed by arrival after
// bank version since.
func (b *RWBank) CellChangedSince(i int, since uint64) bool { return b.vers[i] > since }

// noteCellMutation stamps cell i as changed at a fresh bank version.
func (b *RWBank) noteCellMutation(i int) {
	b.version++
	b.vers[i] = b.version
}

// VersionVector exports the bank's change-tracking state for durable
// snapshots (see EHBank.VersionVector). The returned slice is a copy.
func (b *RWBank) VersionVector() (uint64, []uint64) {
	return b.version, append([]uint64(nil), b.vers...)
}

// RestoreVersionVector installs previously exported change-tracking state.
func (b *RWBank) RestoreVersionVector(version uint64, vers []uint64) error {
	if len(vers) != len(b.vers) {
		return fmt.Errorf("window: version vector has %d cells, bank has %d", len(vers), len(b.vers))
	}
	for i, v := range vers {
		if v > version {
			return fmt.Errorf("window: cell %d version %d exceeds bank version %d", i, v, version)
		}
	}
	b.version = version
	copy(b.vers, vers)
	return nil
}

// Config returns the shared configuration of the bank's cells.
func (b *RWBank) Config() Config { return b.cfg }

// Len reports the number of cells.
func (b *RWBank) Len() int { return len(b.cells) }

// Copies reports the number of independent repetitions per cell.
func (b *RWBank) Copies() int { return b.reps }

// Levels reports the number of levels per copy.
func (b *RWBank) Levels() int { return b.nLv }

// SetCellIDSalt overrides cell i's auto-identifier salt (the per-cell
// equivalent of RW.SetIDSalt; multi-process deployments feeding explicit
// identifiers never need it).
func (b *RWBank) SetCellIDSalt(i int, salt uint64) { b.cells[i].salt = salt }

// level returns copy r, level j of cell i.
func (b *RWBank) level(i, r, j int) *rwLevel {
	return &b.dirs[(i*b.reps+r)*b.nLv+j]
}

// rwGrow carves a bigger chunk at the slab end (8 entries, doubling, capped
// at the level budget — the same schedule as rwDeque.grow, so capacity
// evictions happen at identical points) and moves the ring into it. The old
// chunk is abandoned.
func (b *RWBank) rwGrow(d *rwLevel) {
	nc := int(d.capn) * 2
	if nc == 0 {
		nc = 8
	}
	if nc > b.c {
		nc = b.c
	}
	need := len(b.slab) + nc
	if cap(b.slab) >= need {
		b.slab = b.slab[:need]
	} else {
		grown := make([]rwEntry, need, need*2)
		copy(grown, b.slab)
		b.slab = grown
	}
	off := need - nc
	for k := 0; k < int(d.n); k++ {
		p := int(d.head) + k
		if p >= int(d.capn) {
			p -= int(d.capn)
		}
		b.slab[off+k] = b.slab[int(d.off)+p]
	}
	d.off = int32(off)
	d.capn = int32(nc)
	d.head = 0
}

// rwAt returns the j-th entry (from the oldest) of a level's ring.
func (b *RWBank) rwAt(d *rwLevel, j int) rwEntry {
	p := int(d.head) + j
	if p >= int(d.capn) {
		p -= int(d.capn)
	}
	return b.slab[int(d.off)+p]
}

// rwFront returns the oldest entry of a level's ring.
func (b *RWBank) rwFront(d *rwLevel) rwEntry {
	return b.slab[int(d.off)+int(d.head)]
}

func (b *RWBank) rwPush(d *rwLevel, e rwEntry) {
	if d.n == d.capn {
		if int(d.capn) < b.c {
			b.rwGrow(d)
		} else {
			h := int(d.head) + 1
			if h == int(d.capn) {
				h = 0
			}
			d.head = int32(h)
			d.n--
			d.evicted = true
		}
	}
	p := int(d.head) + int(d.n)
	if p >= int(d.capn) {
		p -= int(d.capn)
	}
	b.slab[int(d.off)+p] = e
	d.n++
}

func (b *RWBank) rwPop(d *rwLevel) {
	h := int(d.head) + 1
	if h == int(d.capn) {
		h = 0
	}
	d.head = int32(h)
	d.n--
}

// rwSearchTickAfter returns the index (from the front) of the oldest entry
// of the level with t > s, or n if none.
func (b *RWBank) rwSearchTickAfter(d *rwLevel, s Tick) int {
	lo, hi := 0, int(d.n)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.rwAt(d, mid).t > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// AddID registers one arrival at tick t in cell i with an explicit unique
// event identifier; semantics mirror RW.AddID exactly.
func (b *RWBank) AddID(i int, t Tick, id uint64) {
	c := &b.cells[i]
	if t == 0 {
		t = 1 // ticks are 1-based
	}
	if t < c.now {
		t = c.now
	}
	c.now = t
	c.count++
	top := b.nLv - 1
	for r := 0; r < b.reps; r++ {
		l := hashing.GeometricLevel(b.seeds[r], id, top)
		e := rwEntry{t: t, id: id}
		base := (i*b.reps + r) * b.nLv
		for j := 0; j <= l; j++ {
			b.rwPush(&b.dirs[base+j], e)
		}
	}
	if c.oldEnd > t {
		c.oldEnd = t
	}
	b.expire(i, c)
	b.noteCellMutation(i)
}

// Add registers one arrival at tick t in cell i under an auto-generated
// unique identifier drawn from the cell's salt and sequence.
func (b *RWBank) Add(i int, t Tick) {
	c := &b.cells[i]
	c.seq++
	b.AddID(i, t, hashing.Mix64(c.salt^c.seq))
}

// expire drops entries of cell i that left the window, scanning every copy's
// levels exactly like RW.expire; the cached oldEnd lower bound
// short-circuits the common nothing-to-expire case.
func (b *RWBank) expire(i int, c *rwCell) bool {
	if c.now < b.cfg.Length {
		return false
	}
	cut := c.now - b.cfg.Length
	if c.oldEnd > cut {
		return false
	}
	oldest := emptyOldEnd
	popped := false
	base := i * b.reps * b.nLv
	for rj := 0; rj < b.reps*b.nLv; rj++ {
		d := &b.dirs[base+rj]
		for d.n > 0 && b.rwFront(d).t <= cut {
			b.rwPop(d)
			popped = true
		}
		if d.n > 0 {
			if f := b.rwFront(d).t; f < oldest {
				oldest = f
			}
		}
	}
	c.oldEnd = oldest
	return popped
}

// Advance moves cell i's window to tick t, expiring old entries.
func (b *RWBank) Advance(i int, t Tick) {
	c := &b.cells[i]
	if t > c.now {
		c.now = t
	}
	b.expire(i, c)
}

// AdvanceAll moves every cell's window to tick t.
func (b *RWBank) AdvanceAll(t Tick) {
	for i := range b.cells {
		b.Advance(i, t)
	}
}

// AdvanceAllNoting moves every cell's window to tick t like AdvanceAll and
// calls note(i) for each cell whose retained content the move actually
// changed (expiry dropped entries) — the exact changed-cell feed delta
// receivers hand to standing-query evaluation.
func (b *RWBank) AdvanceAllNoting(t Tick, note func(int)) {
	for i := range b.cells {
		c := &b.cells[i]
		if t > c.now {
			c.now = t
		}
		if b.expire(i, c) {
			note(i)
		}
	}
}

// Now reports the latest tick observed by cell i.
func (b *RWBank) Now(i int) Tick { return b.cells[i].now }

// Count reports cell i's arrival count since the beginning of the stream.
func (b *RWBank) Count(i int) uint64 { return b.cells[i].count }

// EstimateSince estimates the number of arrivals in cell i with tick > since
// as the median of the per-copy estimates, matching RW.EstimateSince. The
// median is taken over a stack-resident scratch (an insertion sort — copy
// counts are ≤ 21 under MinDelta), so estimates allocate nothing.
func (b *RWBank) EstimateSince(i int, since Tick) float64 {
	c := &b.cells[i]
	if c.count == 0 {
		return 0
	}
	if c.now >= b.cfg.Length {
		if ws := c.now - b.cfg.Length; since < ws {
			since = ws
		}
	}
	var buf [32]float64
	ests := buf[:0]
	if b.reps > len(buf) {
		ests = make([]float64, 0, b.reps)
	}
	for r := 0; r < b.reps; r++ {
		ests = append(ests, b.copyEstimate(i, r, since))
	}
	// Insertion sort; identical median to sort.Float64s on these finite
	// values without forcing the scratch to escape.
	for x := 1; x < len(ests); x++ {
		v := ests[x]
		y := x - 1
		for y >= 0 && ests[y] > v {
			ests[y+1] = ests[y]
			y--
		}
		ests[y+1] = v
	}
	return ests[len(ests)/2]
}

// copyEstimate mirrors rwCopy.estimate: the finest level covering the query
// boundary answers with (events in range) · 2^level.
func (b *RWBank) copyEstimate(i, r int, since Tick) float64 {
	base := (i*b.reps + r) * b.nLv
	j := b.nLv - 1
	for cand := 0; cand < b.nLv; cand++ {
		d := &b.dirs[base+cand]
		if !d.evicted || (d.n > 0 && b.rwFront(d).t <= since) {
			j = cand
			break
		}
	}
	d := &b.dirs[base+j]
	m := int(d.n) - b.rwSearchTickAfter(d, since)
	return float64(m) * float64(uint64(1)<<uint(j))
}

// EstimateRange estimates arrivals in cell i within the last r ticks.
func (b *RWBank) EstimateRange(i int, r Tick) float64 {
	r = clampRange(r, b.cfg.Length)
	return b.EstimateSince(i, rangeToSince(b.cells[i].now, r))
}

// EstimateWindow estimates arrivals in cell i within the whole window.
func (b *RWBank) EstimateWindow(i int) float64 { return b.EstimateRange(i, b.cfg.Length) }

// MergeCell aggregates the inputs' cell i into (empty) cell i of b, exactly
// as MergeRW does position-wise for per-object waves with identical
// configuration: level l of the output is the tick-sorted, id-deduplicated
// concatenation of the inputs' level-l entries. The merged cell's identifier
// salt is a deterministic fold of the input salts (the per-object merge drew
// a fresh random salt; nothing ever reads it back except auto-id generation,
// and a deterministic fold keeps merged encodings byte-stable across
// transports).
func (b *RWBank) MergeCell(i int, inputs []*RWBank) {
	b.MergeCellFrom(i, i, inputs)
}

// MergeCellFrom is MergeCell with the source index decoupled from the
// destination: the inputs' cell src unions into cell i of b. See
// DWBank.MergeCellFrom for why the split exists.
func (b *RWBank) MergeCellFrom(i, src int, inputs []*RWBank) {
	c := &b.cells[i]
	var now Tick
	var count uint64
	salt := uint64(0x9e3779b97f4a7c15)
	for _, in := range inputs {
		ic := &in.cells[src]
		if ic.now > now {
			now = ic.now
		}
		count += ic.count
		salt = hashing.Mix64(salt ^ ic.salt)
	}
	c.now = now
	c.count = count
	c.salt = salt
	c.seq = 0
	var scratch []rwEntry
	for r := 0; r < b.reps; r++ {
		for j := 0; j < b.nLv; j++ {
			scratch = collectBankLevel(scratch[:0], inputs, src, r, j)
			d := b.level(i, r, j)
			for _, e := range scratch {
				b.rwPush(d, e)
			}
		}
	}
	c.oldEnd = 0 // conservative: let expire rescan
	b.expire(i, c)
	b.noteCellMutation(i)
}

// collectBankLevel gathers level j of repetition r of cell i across all
// inputs, sorted by tick with duplicate identifiers removed — the same
// collection order, comparator and dedup scan as collectLevel, so the merged
// ring content is byte-identical to the per-object merge.
func collectBankLevel(all []rwEntry, inputs []*RWBank, i, r, j int) []rwEntry {
	for _, in := range inputs {
		d := in.level(i, r, j)
		for k := 0; k < int(d.n); k++ {
			all = append(all, in.rwAt(d, k))
		}
	}
	sort.Slice(all, func(x, y int) bool { return all[x].t < all[y].t })
	seen := make(map[uint64]struct{}, len(all))
	out := all[:0]
	for _, e := range all {
		if _, dup := seen[e.id]; dup {
			continue
		}
		seen[e.id] = struct{}{}
		out = append(out, e)
	}
	return out
}

// Clone returns an independent deep copy of the bank: three slab memcpys
// plus the fixed header.
func (b *RWBank) Clone() *RWBank {
	c := &RWBank{
		cfg:     b.cfg,
		c:       b.c,
		reps:    b.reps,
		nLv:     b.nLv,
		version: b.version,
		seeds:   make([]uint64, len(b.seeds)),
		cells:   make([]rwCell, len(b.cells)),
		dirs:    make([]rwLevel, len(b.dirs)),
		slab:    make([]rwEntry, len(b.slab)),
		vers:    make([]uint64, len(b.vers)),
	}
	copy(c.seeds, b.seeds)
	copy(c.cells, b.cells)
	copy(c.dirs, b.dirs)
	copy(c.slab, b.slab)
	copy(c.vers, b.vers)
	return c
}

// MemoryBytes reports the heap footprint of the whole bank, including
// abandoned growth chunks still resident in the arena (bounded below the
// live footprint by the doubling schedule).
func (b *RWBank) MemoryBytes() int {
	const (
		cellBytes  = 40 // rwCell: five 8-byte words
		levelBytes = 20 // rwLevel: four int32s + evicted, padded
		entryBytes = 16 // rwEntry: tick + id
		verBytes   = 8  // per-cell last-modified version
	)
	return 96 + len(b.seeds)*8 + len(b.cells)*(cellBytes+verBytes) + len(b.dirs)*levelBytes + cap(b.slab)*entryBytes
}

// CellUntouched reports whether cell i is in its never-touched state: zero
// count and sequence, no stored entries, no eviction marks. The cell's
// identifier salt is excluded — it is process-random even for untouched
// cells, so sparse-baseline elision ships it separately (CellIDSalt).
func (b *RWBank) CellUntouched(i int) bool {
	c := &b.cells[i]
	if c.count != 0 || c.seq != 0 {
		return false
	}
	base := i * b.reps * b.nLv
	for rj := 0; rj < b.reps*b.nLv; rj++ {
		d := &b.dirs[base+rj]
		if d.n != 0 || d.evicted {
			return false
		}
	}
	return true
}

// CellIDSalt reports cell i's auto-identifier salt (the inverse of
// SetCellIDSalt): sparse baselines ship it for elided cells, since it is the
// one process-random field in an otherwise untouched cell's encoding.
func (b *RWBank) CellIDSalt(i int) uint64 { return b.cells[i].salt }

// ResetCell empties cell i, keeping its identifier salt (like RW.Reset) and
// its carved level chunks for refills.
func (b *RWBank) ResetCell(i int) {
	base := i * b.reps * b.nLv
	for rj := 0; rj < b.reps*b.nLv; rj++ {
		d := &b.dirs[base+rj]
		d.head, d.n, d.evicted = 0, 0, false
	}
	salt := b.cells[i].salt
	b.cells[i] = rwCell{salt: salt}
	b.noteCellMutation(i)
}

// Reset empties every cell, keeping configuration, seeds and per-cell salts,
// and reclaiming the arena (abandoned growth chunks included) for refills.
func (b *RWBank) Reset() {
	for i := range b.cells {
		salt := b.cells[i].salt
		b.cells[i] = rwCell{salt: salt}
	}
	for i := range b.dirs {
		b.dirs[i] = rwLevel{off: -1}
	}
	b.slab = b.slab[:0]
	b.version++
	for i := range b.vers {
		b.vers[i] = b.version
	}
}
