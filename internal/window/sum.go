package window

import (
	"fmt"
	"math/bits"
)

// SumEH maintains the SUM of non-negative integer values over a sliding
// window with relative error ε — the "sums" extension of the exponential
// histogram (Datar et al., Section 5). Where the basic counter treats an
// arrival of value v as v unit insertions (O(v) work), SumEH decomposes
// values bitwise across log₂(maxValue) parallel exponential histograms:
// bit i of each value feeds histogram i, and the windowed sum is
// Σ_i 2^i · EH_i(range). Each per-bit estimate carries relative error ε, so
// the combined sum does too, at O(log maxValue) work per arrival regardless
// of the value.
//
// ECM-sketches use the basic counter (stream increments are almost always
// 1); SumEH serves workloads where arrivals carry weights — bytes per
// packet, sale amounts — and is mergeable exactly like its per-bit
// histograms.
type SumEH struct {
	cfg      Config
	maxValue uint64
	bitEH    []*EH
	now      Tick
}

// NewSumEH constructs a windowed summer for values in [0, maxValue].
func NewSumEH(cfg Config, maxValue uint64) (*SumEH, error) {
	if err := cfg.Validate(AlgoEH); err != nil {
		return nil, err
	}
	if maxValue == 0 {
		return nil, fmt.Errorf("window: SumEH maxValue must be positive")
	}
	nbits := bits.Len64(maxValue)
	s := &SumEH{cfg: cfg, maxValue: maxValue, bitEH: make([]*EH, nbits)}
	for i := range s.bitEH {
		h, err := NewEH(cfg)
		if err != nil {
			return nil, err
		}
		s.bitEH[i] = h
	}
	return s, nil
}

// Config returns the configuration the summer was built with.
func (s *SumEH) Config() Config { return s.cfg }

// MaxValue returns the per-arrival value bound.
func (s *SumEH) MaxValue() uint64 { return s.maxValue }

// Add registers an arrival of value v at tick t.
func (s *SumEH) Add(t Tick, v uint64) error {
	if v > s.maxValue {
		return fmt.Errorf("window: value %d exceeds SumEH bound %d", v, s.maxValue)
	}
	if t > s.now {
		s.now = t
	}
	for i := 0; v != 0; i++ {
		if v&1 == 1 {
			s.bitEH[i].Add(t)
		} else {
			s.bitEH[i].Advance(t)
		}
		v >>= 1
	}
	return nil
}

// Advance moves the window forward without an arrival.
func (s *SumEH) Advance(t Tick) {
	if t > s.now {
		s.now = t
	}
	for _, h := range s.bitEH {
		h.Advance(t)
	}
}

// Now reports the latest tick observed.
func (s *SumEH) Now() Tick { return s.now }

// SumSince estimates the sum of values with tick > since.
func (s *SumEH) SumSince(since Tick) float64 {
	var sum float64
	for i, h := range s.bitEH {
		h.Advance(s.now)
		sum += float64(uint64(1)<<uint(i)) * h.EstimateSince(since)
	}
	return sum
}

// SumRange estimates the sum of values within the last r ticks.
func (s *SumEH) SumRange(r Tick) float64 {
	r = clampRange(r, s.cfg.Length)
	return s.SumSince(rangeToSince(s.now, r))
}

// SumWindow estimates the sum over the whole window.
func (s *SumEH) SumWindow() float64 { return s.SumRange(s.cfg.Length) }

// MemoryBytes reports the footprint across the per-bit histograms.
func (s *SumEH) MemoryBytes() int {
	n := 48
	for _, h := range s.bitEH {
		n += h.MemoryBytes()
	}
	return n
}

// Reset empties the summer.
func (s *SumEH) Reset() {
	for _, h := range s.bitEH {
		h.Reset()
	}
	s.now = 0
}

// MergeSumEH aggregates per-site summers (time-based windows only) by
// merging each bit plane with the Theorem 4 replay; the result carries the
// composed error ε + ε' + εε' per bit plane and hence overall.
func MergeSumEH(out Config, maxValue uint64, inputs ...*SumEH) (*SumEH, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("window: MergeSumEH requires at least one input")
	}
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("window: MergeSumEH input %d is nil", i)
		}
		if in.maxValue > maxValue {
			return nil, fmt.Errorf("window: MergeSumEH input %d bound %d exceeds output bound %d", i, in.maxValue, maxValue)
		}
	}
	merged, err := NewSumEH(out, maxValue)
	if err != nil {
		return nil, err
	}
	var now Tick
	for _, in := range inputs {
		if in.now > now {
			now = in.now
		}
	}
	for i := range merged.bitEH {
		var planes []*EH
		for _, in := range inputs {
			if i < len(in.bitEH) {
				planes = append(planes, in.bitEH[i])
			}
		}
		if len(planes) == 0 {
			continue
		}
		m, err := MergeEH(out, planes...)
		if err != nil {
			return nil, fmt.Errorf("window: MergeSumEH bit %d: %w", i, err)
		}
		merged.bitEH[i] = m
	}
	merged.now = now
	merged.Advance(now)
	return merged, nil
}
