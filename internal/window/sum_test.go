package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustSumEH(t *testing.T, cfg Config, maxV uint64) *SumEH {
	t.Helper()
	s, err := NewSumEH(cfg, maxV)
	if err != nil {
		t.Fatalf("NewSumEH: %v", err)
	}
	return s
}

func TestSumEHValidation(t *testing.T) {
	if _, err := NewSumEH(Config{Length: 100, Epsilon: 0.1}, 0); err == nil {
		t.Error("maxValue 0 accepted")
	}
	if _, err := NewSumEH(Config{Length: 0, Epsilon: 0.1}, 10); err == nil {
		t.Error("zero-length window accepted")
	}
	s := mustSumEH(t, Config{Length: 100, Epsilon: 0.1}, 10)
	if err := s.Add(1, 11); err == nil {
		t.Error("value above bound accepted")
	}
}

func TestSumEHExactSmall(t *testing.T) {
	s := mustSumEH(t, Config{Length: 1000, Epsilon: 0.1}, 100)
	vals := []uint64{3, 7, 0, 100, 25}
	var want float64
	for i, v := range vals {
		if err := s.Add(Tick(10*(i+1)), v); err != nil {
			t.Fatal(err)
		}
		want += float64(v)
	}
	if got := s.SumWindow(); got != want {
		t.Errorf("SumWindow = %v, want %v", got, want)
	}
	// Suffix: only the last two arrivals.
	if got := s.SumSince(25); got != 125 {
		t.Errorf("SumSince(25) = %v, want 125", got)
	}
}

func TestSumEHRelativeError(t *testing.T) {
	const eps = 0.1
	cfg := Config{Length: 3000, Epsilon: eps}
	s := mustSumEH(t, cfg, 255)
	rng := rand.New(rand.NewSource(4))
	type arr struct {
		t Tick
		v uint64
	}
	var log []arr
	var now Tick
	for i := 0; i < 20000; i++ {
		now += Tick(rng.Intn(2))
		if now == 0 {
			now = 1
		}
		v := uint64(rng.Intn(256))
		if err := s.Add(now, v); err != nil {
			t.Fatal(err)
		}
		log = append(log, arr{now, v})
		if i%501 == 0 {
			for _, r := range []Tick{3000, 1000, 200} {
				var since Tick
				if rr := clampRange(r, cfg.Length); now > rr {
					since = now - rr
				}
				var want float64
				for _, a := range log {
					if a.t > since {
						want += float64(a.v)
					}
				}
				got := s.SumRange(r)
				if want > 0 && abs64(got-want) > eps*want+1 {
					t.Fatalf("SumRange(%d) = %v, exact %v (err %v > ε)", r, got, want, abs64(got-want)/want)
				}
			}
		}
	}
}

func TestSumEHExpiry(t *testing.T) {
	s := mustSumEH(t, Config{Length: 10, Epsilon: 0.1}, 50)
	if err := s.Add(1, 50); err != nil {
		t.Fatal(err)
	}
	s.Advance(100)
	if got := s.SumWindow(); got != 0 {
		t.Errorf("SumWindow after expiry = %v", got)
	}
}

func TestSumEHZeroValuesAdvanceClock(t *testing.T) {
	s := mustSumEH(t, Config{Length: 100, Epsilon: 0.1}, 10)
	if err := s.Add(5, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(200, 0); err != nil { // value 0 still moves the window
		t.Fatal(err)
	}
	if got := s.SumWindow(); got != 0 {
		t.Errorf("SumWindow = %v, want 0 (first arrival expired)", got)
	}
	if s.Now() != 200 {
		t.Errorf("Now = %d", s.Now())
	}
}

func TestSumEHMerge(t *testing.T) {
	const eps = 0.1
	cfg := Config{Length: 2000, Epsilon: eps}
	a := mustSumEH(t, cfg, 1000)
	b := mustSumEH(t, cfg, 1000)
	rng := rand.New(rand.NewSource(6))
	var now Tick
	var exact float64
	for i := 0; i < 6000; i++ {
		now += Tick(rng.Intn(2))
		if now == 0 {
			now = 1
		}
		v := uint64(rng.Intn(1000))
		tgt := a
		if rng.Intn(2) == 0 {
			tgt = b
		}
		if err := tgt.Add(now, v); err != nil {
			t.Fatal(err)
		}
		if now > 2000 {
			// maintained below via recount; cheap approach: recount at end
		}
		_ = exact
	}
	a.Advance(now)
	b.Advance(now)
	merged, err := MergeSumEH(cfg, 1000, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the merged sum against the sum of the two inputs' own
	// window estimates — each within ε, merge within the composed bound.
	direct := a.SumWindow() + b.SumWindow()
	got := merged.SumWindow()
	bound := MergedRelativeError(eps, eps)
	if direct > 0 && abs64(got-direct) > (bound+eps)*direct+2 {
		t.Errorf("merged SumWindow = %v, inputs total %v", got, direct)
	}
	// Bound mismatch rejected.
	small := mustSumEH(t, cfg, 10)
	if _, err := MergeSumEH(cfg, 5, small); err == nil {
		t.Error("output bound below input bound accepted")
	}
}

func TestSumEHMemoryLogarithmicInValue(t *testing.T) {
	cfg := Config{Length: 1 << 16, Epsilon: 0.1}
	small := mustSumEH(t, cfg, 15)    // 4 bit planes
	large := mustSumEH(t, cfg, 1<<30) // 31 bit planes
	for i := Tick(1); i <= 5000; i++ {
		if err := small.Add(i, uint64(i)%16); err != nil {
			t.Fatal(err)
		}
		if err := large.Add(i, uint64(i)%(1<<30)); err != nil {
			t.Fatal(err)
		}
	}
	ratio := float64(large.MemoryBytes()) / float64(small.MemoryBytes())
	if ratio > 31.0/4.0*2 {
		t.Errorf("memory ratio %v; want ≈ bit-plane ratio %v", ratio, 31.0/4.0)
	}
}

func TestSumEHQuick(t *testing.T) {
	const eps = 0.2
	prop := func(vals []uint16, since uint16) bool {
		cfg := Config{Length: 500, Epsilon: eps}
		s, err := NewSumEH(cfg, 1<<16)
		if err != nil {
			return false
		}
		var now Tick
		type arr struct {
			t Tick
			v uint64
		}
		var log []arr
		for i, v := range vals {
			now = Tick(i + 1)
			if err := s.Add(now, uint64(v)); err != nil {
				return false
			}
			log = append(log, arr{now, uint64(v)})
		}
		sq := Tick(since)
		if now > 500 && sq < now-500 {
			sq = now - 500
		}
		var want float64
		for _, a := range log {
			if a.t > sq && (now < 500 || a.t > now-500) {
				want += float64(a.v)
			}
		}
		got := s.SumSince(Tick(since))
		return abs64(got-want) <= eps*want+0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSumEHReset(t *testing.T) {
	s := mustSumEH(t, Config{Length: 100, Epsilon: 0.1}, 100)
	if err := s.Add(1, 99); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.SumWindow() != 0 || s.Now() != 0 {
		t.Error("Reset left state")
	}
}
