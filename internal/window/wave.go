package window

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// waveEntry is one stored position of a wave: the tick of an arrival and its
// rank (1-based count of arrivals since the beginning of the stream).
type waveEntry struct {
	t    Tick
	rank uint64
}

// entryDeque is a fixed-capacity ring buffer of wave entries ordered oldest
// (front) to newest (back). Waves allocate the full capacity at construction,
// which is why they need the arrival upper bound u(N,S) up front.
type entryDeque struct {
	buf     []waveEntry
	head    int
	n       int
	evicted bool // true once an entry has ever been displaced by capacity
}

func newEntryDeque(capacity int) entryDeque {
	return entryDeque{buf: make([]waveEntry, capacity)}
}

func (d *entryDeque) len() int { return d.n }

func (d *entryDeque) at(i int) waveEntry { return d.buf[(d.head+i)%len(d.buf)] }

func (d *entryDeque) front() waveEntry { return d.buf[d.head] }

func (d *entryDeque) pushBack(e waveEntry) {
	if d.n == len(d.buf) {
		d.head = (d.head + 1) % len(d.buf)
		d.n--
		d.evicted = true
	}
	d.buf[(d.head+d.n)%len(d.buf)] = e
	d.n++
}

func (d *entryDeque) popFront() waveEntry {
	e := d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return e
}

// searchTickAfter returns the index (from the front) of the oldest entry with
// t > s, or d.n if none.
func (d *entryDeque) searchTickAfter(s Tick) int {
	lo, hi := 0, d.n
	for lo < hi {
		mid := (lo + hi) / 2
		if d.at(mid).t > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (d *entryDeque) reset() {
	d.head, d.n, d.evicted = 0, 0, false
}

// DW is a deterministic wave (Gibbons & Tirthapura) for basic counting over a
// sliding window. Level j stores the ticks of every 2^j-th arrival, keeping
// the most recent c = ⌈1/ε⌉+2 positions. A suffix query is answered at the
// finest level whose stored range still covers the query boundary; the
// uncertainty is then at most 2^j-1 arrivals, an ε fraction of the true
// count.
//
// Waves have identical space to exponential histograms up to constants, but
// need u(N,S) — the maximum number of arrivals per window — at construction
// time to size their levels. Following the paper, overestimating u only
// costs logarithmically more space.
//
// Note on update cost: the paper's wave achieves O(1) worst-case updates via
// a level-linking trick; this implementation inserts rank r into levels
// 0..tz(r), which is O(1) amortized (expected two levels) and O(log u)
// worst-case, the same worst case as the exponential histogram.
type DW struct {
	cfg    Config
	c      int // capacity per level
	levels []entryDeque
	rank   uint64 // arrivals since the beginning of the stream
	now    Tick
}

// NewDW constructs a deterministic wave with relative error cfg.Epsilon over
// a window of cfg.Length ticks, sized for cfg.UpperBound arrivals per window.
func NewDW(cfg Config) (*DW, error) {
	if err := cfg.Validate(AlgoDW); err != nil {
		return nil, err
	}
	c := int(math.Ceil(1/cfg.Epsilon)) + 2
	L := waveLevels(cfg.UpperBound, c)
	w := &DW{cfg: cfg, c: c, levels: make([]entryDeque, L+1)}
	for i := range w.levels {
		w.levels[i] = newEntryDeque(c)
	}
	return w, nil
}

// waveLevels returns the top level index L such that c·2^L covers u arrivals.
func waveLevels(u uint64, c int) int {
	if u <= uint64(c) {
		return 1
	}
	q := (u + uint64(c) - 1) / uint64(c)
	return bits.Len64(q-1) + 1
}

// Config returns the configuration the wave was built with.
func (w *DW) Config() Config { return w.cfg }

// Add registers one arrival at tick t.
func (w *DW) Add(t Tick) {
	if t == 0 {
		t = 1 // ticks are 1-based
	}
	if t < w.now {
		t = w.now
	}
	w.now = t
	w.rank++
	top := uint(len(w.levels) - 1)
	tz := uint(bits.TrailingZeros64(w.rank))
	if tz > top {
		tz = top
	}
	e := waveEntry{t: t, rank: w.rank}
	for j := uint(0); j <= tz; j++ {
		w.levels[j].pushBack(e)
	}
	w.expire()
}

// AddN registers n arrivals at tick t.
func (w *DW) AddN(t Tick, n uint64) {
	for i := uint64(0); i < n; i++ {
		w.Add(t)
	}
	if n == 0 {
		w.Advance(t)
	}
}

// Advance moves the window to tick t, expiring old entries.
func (w *DW) Advance(t Tick) {
	if t > w.now {
		w.now = t
	}
	w.expire()
}

// Now reports the latest observed tick.
func (w *DW) Now() Tick { return w.now }

func (w *DW) expire() {
	if w.now < w.cfg.Length {
		return
	}
	cut := w.now - w.cfg.Length
	for j := range w.levels {
		d := &w.levels[j]
		for d.n > 0 && d.front().t <= cut {
			d.popFront()
		}
	}
}

// EstimateSince estimates the number of arrivals with tick > since.
func (w *DW) EstimateSince(since Tick) float64 {
	if w.rank == 0 {
		return 0
	}
	if w.now >= w.cfg.Length {
		if ws := w.now - w.cfg.Length; since < ws {
			since = ws
		}
	}
	// Pick the finest level whose stored range covers the boundary: either
	// its oldest entry is at or before `since`, or the level has never
	// evicted (and hence covers the entire stream so far).
	j := len(w.levels) - 1
	for cand := 0; cand < len(w.levels); cand++ {
		d := &w.levels[cand]
		if !d.evicted || (d.n > 0 && d.front().t <= since) {
			j = cand
			break
		}
	}
	d := &w.levels[j]
	idx := d.searchTickAfter(since)
	gap := float64(uint64(1)<<uint(j)-1) / 2
	if j == 0 && !d.evicted {
		gap = 0 // level 0 without evictions is exact
	}
	if idx == d.n {
		// Boundary is covered but no stored position lies after it: fewer
		// than 2^j arrivals are in range.
		if d.n == 0 {
			return 0
		}
		return gap
	}
	e := d.at(idx)
	return float64(w.rank-e.rank) + 1 + gap
}

// EstimateRange estimates arrivals within the last r ticks.
func (w *DW) EstimateRange(r Tick) float64 {
	r = clampRange(r, w.cfg.Length)
	return w.EstimateSince(rangeToSince(w.now, r))
}

// EstimateWindow estimates arrivals within the whole window.
func (w *DW) EstimateWindow() float64 { return w.EstimateRange(w.cfg.Length) }

// MemoryBytes reports the heap footprint. Waves pre-allocate their level
// structure, so the footprint is fixed at construction.
func (w *DW) MemoryBytes() int {
	const entryBytes = 16
	n := 64
	for i := range w.levels {
		n += 40 + cap(w.levels[i].buf)*entryBytes
	}
	return n
}

// Reset empties the wave, keeping its configuration.
func (w *DW) Reset() {
	for i := range w.levels {
		w.levels[i].reset()
	}
	w.rank = 0
	w.now = 0
}

// Levels reports the number of levels in the wave.
func (w *DW) Levels() int { return len(w.levels) }

// MergeDW performs order-preserving aggregation of deterministic waves into
// a fresh wave configured by out (Section 5.1, "Deterministic Waves"). Each
// input wave is first converted to a bucket log equivalent to an exponential
// histogram's — consecutive stored ranks r1 < r2 delimit a bucket of r2−r1
// arrivals between their ticks — and the buckets are replayed half at the
// start tick and half at the end tick, in global tick order. The resulting
// error bound matches Theorem 4: ε + ε′ + εε′.
func MergeDW(out Config, inputs ...*DW) (*DW, error) {
	if len(inputs) == 0 {
		return nil, errors.New("window: MergeDW requires at least one input")
	}
	if out.Model != TimeBased {
		return nil, errors.New("window: order-preserving aggregation requires time-based windows")
	}
	var events []replayEvent
	var now Tick
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("window: MergeDW input %d is nil", i)
		}
		if in.cfg.Model != TimeBased {
			return nil, fmt.Errorf("window: MergeDW input %d is %v; count-based waves cannot be aggregated", i, in.cfg.Model)
		}
		events = append(events, in.replayLog()...)
		if in.now > now {
			now = in.now
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].t < events[b].t })
	merged, err := NewDW(out)
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		merged.AddN(ev.t, ev.n)
	}
	merged.Advance(now)
	return merged, nil
}

// replayLog linearizes the wave's stored positions into replay events. The
// distinct stored ranks split the summarized stream into segments; a segment
// between ranks r1 < r2 holds r2−r1 arrivals, replayed half at each boundary
// tick like an exponential-histogram bucket.
func (w *DW) replayLog() []replayEvent {
	return waveReplayEvents(nil, w.distinctEntries())
}

// waveReplayEvents converts rank-sorted distinct entries into replay events
// and appends them to dst. Shared by the per-object wave and the flat bank so
// their merge paths stay byte-identical: the oldest stored entry stands for
// itself only (arrivals before it have either expired or were evicted beyond
// reconstruction), and each segment between consecutive ranks replays half at
// each boundary tick like an exponential-histogram bucket.
func waveReplayEvents(dst []replayEvent, entries []waveEntry) []replayEvent {
	if len(entries) == 0 {
		return dst
	}
	dst = append(dst, replayEvent{t: entries[0].t, n: 1})
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1], entries[i]
		n := cur.rank - prev.rank
		if n == 0 {
			continue
		}
		half := n / 2
		if n-half > 0 {
			dst = append(dst, replayEvent{t: prev.t, n: n - half})
		}
		if half > 0 {
			dst = append(dst, replayEvent{t: cur.t, n: half})
		}
	}
	return dst
}

// distinctEntries returns all stored entries across levels, sorted by rank
// with duplicates removed.
func (w *DW) distinctEntries() []waveEntry {
	var all []waveEntry
	for j := range w.levels {
		d := &w.levels[j]
		for i := 0; i < d.n; i++ {
			all = append(all, d.at(i))
		}
	}
	return sortDedupEntriesByRank(all)
}

// sortDedupEntriesByRank sorts wave entries by rank and removes duplicates in
// place. Equal ranks within one wave always name the same arrival, so the
// result is a deterministic linearization of the stored stream positions.
func sortDedupEntriesByRank(all []waveEntry) []waveEntry {
	sort.Slice(all, func(a, b int) bool { return all[a].rank < all[b].rank })
	out := all[:0]
	var last uint64
	for _, e := range all {
		if len(out) == 0 || e.rank != last {
			out = append(out, e)
			last = e.rank
		}
	}
	return out
}
