package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustDW(t *testing.T, cfg Config) *DW {
	t.Helper()
	w, err := NewDW(cfg)
	if err != nil {
		t.Fatalf("NewDW: %v", err)
	}
	return w
}

func TestDWEmpty(t *testing.T) {
	w := mustDW(t, Config{Length: 100, Epsilon: 0.1})
	if got := w.EstimateWindow(); got != 0 {
		t.Errorf("empty EstimateWindow = %v, want 0", got)
	}
}

func TestDWExactWhenSmall(t *testing.T) {
	w := mustDW(t, Config{Length: 1000, Epsilon: 0.2})
	for i := Tick(1); i <= 5; i++ {
		w.Add(i * 10)
	}
	for since := Tick(0); since <= 60; since += 5 {
		want := 0.0
		for i := Tick(1); i <= 5; i++ {
			if i*10 > since {
				want++
			}
		}
		if got := w.EstimateSince(since); got != want {
			t.Errorf("EstimateSince(%d) = %v, want %v", since, got, want)
		}
	}
}

func TestDWExpiry(t *testing.T) {
	w := mustDW(t, Config{Length: 10, Epsilon: 0.1})
	w.Add(1)
	w.Add(2)
	w.Advance(12)
	if got := w.EstimateWindow(); got != 0 {
		t.Errorf("EstimateWindow after expiry = %v, want 0", got)
	}
}

func TestDWRelativeErrorBound(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.25} {
		rng := rand.New(rand.NewSource(11))
		cfg := Config{Length: 5000, Epsilon: eps, UpperBound: 20000}
		w := mustDW(t, cfg)
		x := mustExact(t, cfg)
		var now Tick
		for i := 0; i < 20000; i++ {
			now += Tick(rng.Intn(3))
			w.Add(now)
			x.Add(now)
			if i%97 == 0 {
				checkSuffixQueries(t, "DW", w, x, eps, now, rng)
			}
		}
	}
}

func TestDWLevelSizing(t *testing.T) {
	cases := []struct {
		u   uint64
		eps float64
	}{
		{100, 0.1},
		{1000, 0.1},
		{1 << 20, 0.05},
		{10, 0.5},
	}
	for _, tc := range cases {
		cfg := Config{Length: 1 << 30, Epsilon: tc.eps, UpperBound: tc.u}
		w := mustDW(t, cfg)
		c := w.c
		top := w.Levels() - 1
		if cov := uint64(c) << uint(top); cov < tc.u {
			t.Errorf("u=%d eps=%v: top level covers %d < u", tc.u, tc.eps, cov)
		}
	}
}

func TestDWMemoryFixed(t *testing.T) {
	w := mustDW(t, Config{Length: 1 << 20, Epsilon: 0.1, UpperBound: 1 << 20})
	before := w.MemoryBytes()
	for i := Tick(1); i <= 1<<15; i++ {
		w.Add(i)
	}
	if after := w.MemoryBytes(); after != before {
		t.Errorf("wave memory changed from %d to %d; waves pre-allocate", before, after)
	}
}

func TestDWReset(t *testing.T) {
	w := mustDW(t, Config{Length: 100, Epsilon: 0.1})
	for i := Tick(1); i < 80; i++ {
		w.Add(i)
	}
	w.Reset()
	if w.EstimateWindow() != 0 || w.Now() != 0 {
		t.Errorf("Reset left state: window=%v now=%d", w.EstimateWindow(), w.Now())
	}
	w.Add(3)
	if got := w.EstimateWindow(); got != 1 {
		t.Errorf("EstimateWindow after reset = %v, want 1", got)
	}
}

func TestDWQuickSuffixAccuracy(t *testing.T) {
	const eps = 0.15
	prop := func(gaps []uint8, queryAt uint16) bool {
		cfg := Config{Length: 300, Epsilon: eps, UpperBound: 2000}
		w, _ := NewDW(cfg)
		x, _ := NewExact(cfg)
		var now Tick
		for _, g := range gaps {
			now += Tick(g % 5)
			w.Add(now)
			x.Add(now)
		}
		since := Tick(queryAt)
		got := w.EstimateSince(since)
		want := float64(x.CountSince(since))
		return abs64(got-want) <= eps*want+0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDWMergeAccuracy(t *testing.T) {
	// Two site streams aggregated into one wave; the merged estimate must be
	// within the Theorem-4-style bound of the exact union count.
	const eps = 0.1
	rng := rand.New(rand.NewSource(5))
	cfg := Config{Length: 2000, Epsilon: eps, UpperBound: 8000}
	w1 := mustDW(t, cfg)
	w2 := mustDW(t, cfg)
	x := mustExact(t, cfg)
	var now Tick
	for i := 0; i < 8000; i++ {
		now += Tick(rng.Intn(2))
		if rng.Intn(2) == 0 {
			w1.Add(now)
		} else {
			w2.Add(now)
		}
		x.Add(now)
	}
	w1.Advance(now)
	w2.Advance(now)
	merged, err := MergeDW(cfg, w1, w2)
	if err != nil {
		t.Fatalf("MergeDW: %v", err)
	}
	bound := MergedRelativeError(eps, eps)
	for _, r := range []Tick{2000, 1000, 500} {
		got := merged.EstimateRange(r)
		want := float64(x.CountRange(r))
		if want == 0 {
			continue
		}
		if abs64(got-want) > bound*want+1 {
			t.Errorf("merged EstimateRange(%d) = %v, exact = %v, bound = %v", r, got, want, bound*want)
		}
	}
}

func TestDWMergeRejectsCountBased(t *testing.T) {
	cfg := Config{Model: CountBased, Length: 100, Epsilon: 0.1}
	w := mustDW(t, cfg)
	if _, err := MergeDW(cfg, w); err == nil {
		t.Fatal("MergeDW accepted count-based waves; the paper proves this is impossible")
	}
}
