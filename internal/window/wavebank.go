package window

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// This file implements the flat-memory deterministic-wave engine: a bank of
// DW counters whose level rings all live in one contiguous arena, mirroring
// the EHBank layout (see arena.go for the design rationale).
//
// The per-object layout (type DW) eagerly allocates a full-capacity
// []waveEntry ring per level of every counter — for a d×w ECM-sketch that is
// thousands of heap objects sized for the worst case up front. The bank
// replaces them with three slabs:
//
//	cells []dwCell  — one fixed-size record per counter (clock, rank, expiry cache)
//	dirs  []dwLevel — the level directories: cell i's levels are the
//	                  fixed-stride run dirs[i*nLv : (i+1)*nLv]
//	slab  []waveEntry — ring storage, carved lazily into fixed-size chunks of
//	                  c entries, one chunk per level on its first push
//
// Unlike EH, a wave's level structure is fixed at construction (waveLevels of
// the configured upper bound), so the directory never grows; and unlike the
// per-object wave, chunks are carved only when a level first stores an entry,
// so sparse cells cost three directory words instead of the worst case.
//
// The algorithm is deliberately identical to type DW — same rank-driven level
// insertion, same expiry, same estimate arithmetic in the same order — so a
// bank cell and a DW fed the same stream return bit-identical answers and
// marshal to byte-identical encodings. Tests assert both.

// dwCell is the per-counter header of a deterministic-wave bank.
type dwCell struct {
	rank   uint64 // arrivals since the beginning of the stream
	now    Tick   // latest tick observed by this cell
	oldEnd Tick   // conservative lower bound on the earliest stored tick
}

// dwLevel locates one wave level's ring inside the slab. off < 0 marks a
// level whose chunk has not been carved yet.
type dwLevel struct {
	off     int32
	head    uint16
	n       uint16
	evicted bool // true once an entry has ever been displaced by capacity
}

// DWBank is a bank of n deterministic-wave counters backed by one contiguous
// entry arena. Cells are addressed by index; an ECM-sketch lays its d×w
// counters out row-major and addresses cell j*w+i.
//
// DWBank is not safe for concurrent use.
type DWBank struct {
	cfg   Config
	c     int // capacity per level: ⌈1/ε⌉+2
	nLv   int // levels per cell (L+1), fixed by cfg at construction
	cells []dwCell
	dirs  []dwLevel
	slab  []waveEntry

	// version counts arrival-content mutations of the whole bank, and
	// vers[i] records the bank version at cell i's last such mutation —
	// identical change-tracking semantics to EHBank: expiry and Advance do
	// not bump, they are replayed by the receiver advancing to the same tick.
	version uint64
	vers    []uint64
}

// NewDWBank constructs a bank of n empty deterministic waves, each with
// relative error cfg.Epsilon over a window of cfg.Length ticks, sized for
// cfg.UpperBound arrivals per window.
func NewDWBank(cfg Config, n int) (*DWBank, error) {
	if err := cfg.Validate(AlgoDW); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("window: bank size must be positive, got %d", n)
	}
	c := int(math.Ceil(1/cfg.Epsilon)) + 2
	L := waveLevels(cfg.UpperBound, c)
	b := &DWBank{
		cfg:   cfg,
		c:     c,
		nLv:   L + 1,
		cells: make([]dwCell, n),
		dirs:  make([]dwLevel, n*(L+1)),
		vers:  make([]uint64, n),
	}
	for i := range b.dirs {
		b.dirs[i].off = -1
	}
	return b, nil
}

// Version reports the bank's arrival-mutation counter (see EHBank.Version).
func (b *DWBank) Version() uint64 { return b.version }

// CellChangedSince reports whether cell i's content changed by arrival after
// bank version since.
func (b *DWBank) CellChangedSince(i int, since uint64) bool { return b.vers[i] > since }

// noteCellMutation stamps cell i as changed at a fresh bank version.
func (b *DWBank) noteCellMutation(i int) {
	b.version++
	b.vers[i] = b.version
}

// VersionVector exports the bank's change-tracking state for durable
// snapshots (see EHBank.VersionVector). The returned slice is a copy.
func (b *DWBank) VersionVector() (uint64, []uint64) {
	return b.version, append([]uint64(nil), b.vers...)
}

// RestoreVersionVector installs previously exported change-tracking state.
func (b *DWBank) RestoreVersionVector(version uint64, vers []uint64) error {
	if len(vers) != len(b.vers) {
		return fmt.Errorf("window: version vector has %d cells, bank has %d", len(vers), len(b.vers))
	}
	for i, v := range vers {
		if v > version {
			return fmt.Errorf("window: cell %d version %d exceeds bank version %d", i, v, version)
		}
	}
	b.version = version
	copy(b.vers, vers)
	return nil
}

// Config returns the shared configuration of the bank's cells.
func (b *DWBank) Config() Config { return b.cfg }

// Len reports the number of cells.
func (b *DWBank) Len() int { return len(b.cells) }

// Levels reports the number of levels per cell.
func (b *DWBank) Levels() int { return b.nLv }

// carve hands the level a fresh chunk of c entries from the end of the slab.
func (b *DWBank) carve(d *dwLevel) {
	need := len(b.slab) + b.c
	if cap(b.slab) >= need {
		// Reslicing may expose stale entries from before a Reset; harmless,
		// since ring entries are always written before they are read.
		b.slab = b.slab[:need]
	} else {
		grown := make([]waveEntry, need, need*2)
		copy(grown, b.slab)
		b.slab = grown
	}
	d.off = int32(need - b.c)
}

// waveAt returns the j-th entry (from the oldest) of a level's ring.
func (b *DWBank) waveAt(d *dwLevel, j int) waveEntry {
	p := int(d.head) + j
	if p >= b.c {
		p -= b.c
	}
	return b.slab[int(d.off)+p]
}

// waveFront returns the oldest entry of a level's ring.
func (b *DWBank) waveFront(d *dwLevel) waveEntry {
	return b.slab[int(d.off)+int(d.head)]
}

func (b *DWBank) wavePush(d *dwLevel, e waveEntry) {
	if d.off < 0 {
		b.carve(d)
	}
	if int(d.n) == b.c {
		h := int(d.head) + 1
		if h == b.c {
			h = 0
		}
		d.head = uint16(h)
		d.n--
		d.evicted = true
	}
	p := int(d.head) + int(d.n)
	if p >= b.c {
		p -= b.c
	}
	b.slab[int(d.off)+p] = e
	d.n++
}

func (b *DWBank) wavePop(d *dwLevel) {
	h := int(d.head) + 1
	if h == b.c {
		h = 0
	}
	d.head = uint16(h)
	d.n--
}

// waveSearchTickAfter returns the index (from the front) of the oldest entry
// of the level with t > s, or n if none.
func (b *DWBank) waveSearchTickAfter(d *dwLevel, s Tick) int {
	lo, hi := 0, int(d.n)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.waveAt(d, mid).t > s {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Add registers one arrival at tick t in cell i.
func (b *DWBank) Add(i int, t Tick) { b.AddN(i, t, 1) }

// AddN registers n arrivals at tick t in cell i. The semantics mirror DW.AddN
// exactly: ticks are 1-based, slight regressions are clamped to the cell's
// clock, each arrival increments the rank and inserts into levels 0..tz(rank),
// and expiry runs after every arrival (so capacity-eviction flags match the
// per-object wave bit for bit).
func (b *DWBank) AddN(i int, t Tick, n uint64) {
	if n == 0 {
		b.Advance(i, t)
		return
	}
	c := &b.cells[i]
	if t == 0 {
		t = 1 // ticks are 1-based; tick 0 means "before the stream"
	}
	if t < c.now {
		t = c.now // clamp slight out-of-order arrivals
	}
	c.now = t
	top := uint(b.nLv - 1)
	base := i * b.nLv
	for u := uint64(0); u < n; u++ {
		c.rank++
		tz := uint(bits.TrailingZeros64(c.rank))
		if tz > top {
			tz = top
		}
		e := waveEntry{t: t, rank: c.rank}
		for j := uint(0); j <= tz; j++ {
			b.wavePush(&b.dirs[base+int(j)], e)
		}
		if c.oldEnd > t {
			c.oldEnd = t // newly stored entry may now be the earliest
		}
		b.expire(i, c)
	}
	b.noteCellMutation(i)
}

// AddBatchRow applies one row of a validated batch: event e inserts ns[e]
// arrivals at ticks[e] into cell base+pos[e]. A nil ns means every event is
// a unit arrival. See EHBank.AddBatchRow.
func (b *DWBank) AddBatchRow(base int, pos []int32, ticks []Tick, ns []uint64) {
	for e, p := range pos {
		n := uint64(1)
		if ns != nil {
			n = ns[e]
		}
		b.AddN(base+int(p), ticks[e], n)
	}
}

// AddBatchRowOrdered applies one row of a validated batch in the grouped
// order named by order (indices into pos/ticks/ns, sorted by cell position):
// consecutive touches of the same cell reuse the hot cache lines. A nil ns
// means every event is a unit arrival. Grouping is semantics-preserving
// because cells are independent and the stable sort keeps each cell's
// arrivals in batch order.
func (b *DWBank) AddBatchRowOrdered(base int, pos []int32, ticks []Tick, ns []uint64, order []int32) {
	for _, e := range order {
		n := uint64(1)
		if ns != nil {
			n = ns[e]
		}
		b.AddN(base+int(pos[e]), ticks[e], n)
	}
}

// expire drops entries of cell i that left the window, reporting whether
// any entry was actually dropped. The cached oldEnd lower bound
// short-circuits the common case — nothing to expire — without scanning
// the level directory.
func (b *DWBank) expire(i int, c *dwCell) bool {
	if c.now < b.cfg.Length {
		return false
	}
	cut := c.now - b.cfg.Length
	if c.oldEnd > cut {
		return false
	}
	base := i * b.nLv
	oldest := emptyOldEnd
	popped := false
	for j := 0; j < b.nLv; j++ {
		d := &b.dirs[base+j]
		for d.n > 0 && b.waveFront(d).t <= cut {
			b.wavePop(d)
			popped = true
		}
		if d.n > 0 {
			if f := b.waveFront(d).t; f < oldest {
				oldest = f
			}
		}
	}
	c.oldEnd = oldest
	return popped
}

// Advance moves cell i's window to tick t, expiring old entries.
func (b *DWBank) Advance(i int, t Tick) {
	c := &b.cells[i]
	if t > c.now {
		c.now = t
	}
	b.expire(i, c)
}

// AdvanceAll moves every cell's window to tick t.
func (b *DWBank) AdvanceAll(t Tick) {
	for i := range b.cells {
		b.Advance(i, t)
	}
}

// AdvanceAllNoting moves every cell's window to tick t like AdvanceAll and
// calls note(i) for each cell whose retained content the move actually
// changed (expiry dropped entries). This matters doubly for deterministic
// waves: expiry can force an estimate onto a coarser level, so the value
// read from an expired cell may even rise — standing-query evaluation must
// treat such cells as touched.
func (b *DWBank) AdvanceAllNoting(t Tick, note func(int)) {
	for i := range b.cells {
		c := &b.cells[i]
		if t > c.now {
			c.now = t
		}
		if b.expire(i, c) {
			note(i)
		}
	}
}

// Now reports the latest tick observed by cell i.
func (b *DWBank) Now(i int) Tick { return b.cells[i].now }

// Rank reports cell i's arrival count since the beginning of the stream.
func (b *DWBank) Rank(i int) uint64 { return b.cells[i].rank }

// EstimateSince estimates the number of arrivals in cell i with tick > since;
// the arithmetic matches DW.EstimateSince operation for operation.
func (b *DWBank) EstimateSince(i int, since Tick) float64 {
	c := &b.cells[i]
	if c.rank == 0 {
		return 0
	}
	if c.now >= b.cfg.Length {
		if ws := c.now - b.cfg.Length; since < ws {
			since = ws
		}
	}
	// Pick the finest level whose stored range covers the boundary: either
	// its oldest entry is at or before `since`, or the level has never
	// evicted (and hence covers the entire stream so far).
	base := i * b.nLv
	j := b.nLv - 1
	for cand := 0; cand < b.nLv; cand++ {
		d := &b.dirs[base+cand]
		if !d.evicted || (d.n > 0 && b.waveFront(d).t <= since) {
			j = cand
			break
		}
	}
	d := &b.dirs[base+j]
	idx := b.waveSearchTickAfter(d, since)
	gap := float64(uint64(1)<<uint(j)-1) / 2
	if j == 0 && !d.evicted {
		gap = 0 // level 0 without evictions is exact
	}
	if idx == int(d.n) {
		// Boundary is covered but no stored position lies after it: fewer
		// than 2^j arrivals are in range.
		if d.n == 0 {
			return 0
		}
		return gap
	}
	e := b.waveAt(d, idx)
	return float64(c.rank-e.rank) + 1 + gap
}

// EstimateRange estimates arrivals in cell i within the last r ticks.
func (b *DWBank) EstimateRange(i int, r Tick) float64 {
	r = clampRange(r, b.cfg.Length)
	return b.EstimateSince(i, rangeToSince(b.cells[i].now, r))
}

// EstimateWindow estimates arrivals in cell i within the whole window.
func (b *DWBank) EstimateWindow(i int) float64 { return b.EstimateRange(i, b.cfg.Length) }

// appendEntries appends cell i's stored entries to dst, collected level by
// level front to back — the exact collection order DW.distinctEntries uses,
// which keeps the merge replay byte-identical to the per-object path.
func (b *DWBank) appendEntries(dst []waveEntry, i int) []waveEntry {
	base := i * b.nLv
	for j := 0; j < b.nLv; j++ {
		d := &b.dirs[base+j]
		for k := 0; k < int(d.n); k++ {
			dst = append(dst, b.waveAt(d, k))
		}
	}
	return dst
}

// MergeCell performs the order-preserving aggregation of Section 5.1 into
// cell i, exactly as MergeDW does for per-object waves: each input cell's
// stored positions linearize into replay events, the concatenation is sorted
// by tick, and the events are replayed into the (empty) cell. now advances
// the cell's clock to the inputs' high-water tick.
func (b *DWBank) MergeCell(i int, now Tick, inputs []*DWBank) {
	b.MergeCellFrom(i, i, now, inputs)
}

// MergeCellFrom is MergeCell with the source index decoupled from the
// destination: the inputs' cell src merges into cell i of b. A worker
// merging a chunk of a larger bank into a chunk-sized private scratch bank
// addresses its scratch cells 0..n-1 while reading the inputs at their
// global indices; the replay is identical to MergeCell(src, ...) on a bank
// where the indices coincide.
func (b *DWBank) MergeCellFrom(i, src int, now Tick, inputs []*DWBank) {
	var events []replayEvent
	for _, in := range inputs {
		events = waveReplayEvents(events, sortDedupEntriesByRank(in.appendEntries(nil, src)))
	}
	sort.Slice(events, func(x, y int) bool { return events[x].t < events[y].t })
	for _, ev := range events {
		b.AddN(i, ev.t, ev.n)
	}
	b.Advance(i, now)
}

// Clone returns an independent deep copy of the bank: three slab memcpys
// plus the fixed header. The clone owns its slabs outright, so source and
// clone may afterwards be used from different goroutines without
// coordination.
func (b *DWBank) Clone() *DWBank {
	c := &DWBank{
		cfg:     b.cfg,
		c:       b.c,
		nLv:     b.nLv,
		version: b.version,
		cells:   make([]dwCell, len(b.cells)),
		dirs:    make([]dwLevel, len(b.dirs)),
		slab:    make([]waveEntry, len(b.slab)),
		vers:    make([]uint64, len(b.vers)),
	}
	copy(c.cells, b.cells)
	copy(c.dirs, b.dirs)
	copy(c.slab, b.slab)
	copy(c.vers, b.vers)
	return c
}

// MemoryBytes reports the heap footprint of the whole bank. Unlike the
// per-object engine, levels that never stored an entry cost only their
// directory word — the worst-case ring budget is not paid up front.
func (b *DWBank) MemoryBytes() int {
	const (
		cellBytes  = 24 // dwCell: three 8-byte words
		levelBytes = 12 // dwLevel: off + head + n + evicted, padded
		entryBytes = 16 // waveEntry: tick + rank
		verBytes   = 8  // per-cell last-modified version
	)
	return 96 + len(b.cells)*(cellBytes+verBytes) + len(b.dirs)*levelBytes + cap(b.slab)*entryBytes
}

// CellUntouched reports whether cell i is in its never-touched state: zero
// rank, no stored entries, no eviction marks. Unlike EH, a wave cell whose
// entries all expired is NOT untouched — its rank and eviction flags persist
// in the encoding — so only never-written cells qualify for sparse-baseline
// elision.
func (b *DWBank) CellUntouched(i int) bool {
	if b.cells[i].rank != 0 {
		return false
	}
	base := i * b.nLv
	for j := 0; j < b.nLv; j++ {
		d := &b.dirs[base+j]
		if d.n != 0 || d.evicted {
			return false
		}
	}
	return true
}

// ResetCell empties cell i, keeping its carved level chunks for refills —
// the receiving half of a delta application replaces a changed cell by
// resetting it and decoding the shipped encoding into the empty cell.
func (b *DWBank) ResetCell(i int) {
	base := i * b.nLv
	for j := 0; j < b.nLv; j++ {
		d := &b.dirs[base+j]
		d.head, d.n, d.evicted = 0, 0, false
	}
	b.cells[i] = dwCell{}
	b.noteCellMutation(i)
}

// Reset empties every cell, keeping the configuration and retaining the
// arena's capacity for refills. Every cell counts as mutated: a delta cursor
// taken before a Reset must see all content re-shipped.
func (b *DWBank) Reset() {
	for i := range b.cells {
		b.cells[i] = dwCell{}
	}
	for i := range b.dirs {
		b.dirs[i] = dwLevel{off: -1}
	}
	b.slab = b.slab[:0]
	b.version++
	for i := range b.vers {
		b.vers[i] = b.version
	}
}
