package window

import (
	"bytes"
	"testing"

	"ecmsketch/internal/hashing"
)

// Golden-vector tests for the wave engines: the hex blobs below were produced
// by the per-object level-deque encoders that predate the flat wave arenas.
// They pin the wireDW/wireRW formats across the layout refactor — serialized
// waves from earlier commits must keep decoding into both the per-object
// engines and the banks, answering queries identically and re-encoding to the
// exact same bytes.

const (
	// dwGoldenHex encodes an ε=0.08, W=500, u=2000 deterministic wave fed 600
	// bursty AddN calls (deterministic stream; fingerprint in the assertions).
	dwGoldenHex = "e200f4037b14ae47e17ab43f0000000000000000d00f07ee09a3070a0f01c60995070101000100010001030100010101" +
		"00010001000102010301000100010f01ac09860704020602000203020402060203020102000203020102000202020302" +
		"0f018709e806030408040a04030405040604000406040604070409040104040402040f01b008b0060f080d0803080b08" +
		"2308060804080b080d080b0806080d080a0806080f019607c0050e100c10251017101e10141012101c100e1029100f10" +
		"1810131010100b009206e0043120202033201a203c2032202e203720272023200500c30680055340564060405e400300" +
		"c3068005a9018001be0180010100ec0780060000"

	// dwMergeGoldenHex is the MergeDW aggregation of the wave above with a
	// second 300-arrival stream, pinning the order-preserving merge output.
	dwMergeGoldenHex = "e200f4037b14ae47e17ab43f0000000000000000d00f07ee09e9030a0f01c609db030001010100010001000103010001" +
		"01010001000100010201030100010f01ac09cc0304020602000203020402060203020002010200020302010200020502" +
		"0f018709b003030408040a0403040504060402040a0403040a0403040104040405040f01b008f8020f080d0803080b08" +
		"2308060804080b080d080b080c080d08040809080f01960780020e100c10251017101e10141012100f1010102e100a10" +
		"1810171011100b009206a0013120202033201a203c20322021203e20222028200500c306c00153405640534060400200" +
		"96078002a90180010100960780020000"

	// rwGoldenHex encodes an ε=0.6, δ=0.3, W=200, u=400 randomized wave fed
	// 150 Add calls under an explicit identifier salt.
	rwGoldenHex = "e300c801333333333333e33f333333333333d33f90030be9019601effdb6f59daad4a851960103080c01d201cec19e98" +
		"e38b89fe4c00c4bee3fd9daeb5ed4c0180c5d1dee78098d2070298c0fac687a484d3520098e2f3e0f899eea19c01028c" +
		"ccaed4e3a4ad80bb0102cafca0b1c0db8e8f810102bd8499d9c58d9b913800fada9fd3a8fdadcb60028288b1d789f3b2" +
		"81f30101c1d0c5dfb88fa6b24901e891e6cda2939aedf5010c01bd01fad486ccefed8fabd10104c79fe5fc81a9fdccf0" +
		"0108d6bfb8dadfc9ee886f01b2c598b9ef918bfb49018d8e93959c9afbaefb0105be81bfe6da82d5d37602cec19e98e3" +
		"8b89fe4c0180c5d1dee78098d2070298e2f3e0f899eea19c0104cafca0b1c0db8e8f810105c1d0c5dfb88fa6b24901e8" +
		"91e6cda2939aedf5010c019b019cbbf5efd4b8fb90c30105b591a689defbba8f4c0792cfadd19a93aa83b80113edb8e0" +
		"ffb086decb5507c79fe5fc81a9fdccf00108d6bfb8dadfc9ee886f01b2c598b9ef918bfb4906be81bfe6da82d5d37602" +
		"cec19e98e38b89fe4c0180c5d1dee78098d20706cafca0b1c0db8e8f810106e891e6cda2939aedf5010c0180019b84a1" +
		"aab4d3d4b9371581e2afa2c7aef7e060069cbbf5efd4b8fb90c30105b591a689defbba8f4c0792cfadd19a93aa83b801" +
		"13edb8e0ffb086decb5507c79fe5fc81a9fdccf00109b2c598b9ef918bfb4906be81bfe6da82d5d37602cec19e98e38b" +
		"89fe4c0180c5d1dee78098d2070ce891e6cda2939aedf501040067b1df81dcfed589908601199b84a1aab4d3d4b9374a" +
		"b2c598b9ef918bfb4908cec19e98e38b89fe4c010080019b84a1aab4d3d4b937010080019b84a1aab4d3d4b937010080" +
		"019b84a1aab4d3d4b9370c01d201cec19e98e38b89fe4c00c4bee3fd9daeb5ed4c0180c5d1dee78098d2070298c0fac6" +
		"87a484d3520098e2f3e0f899eea19c01028cccaed4e3a4ad80bb0102cafca0b1c0db8e8f810102bd8499d9c58d9b9138" +
		"00fada9fd3a8fdadcb60028288b1d789f3b281f30101c1d0c5dfb88fa6b24901e891e6cda2939aedf5010c01bd01fad4" +
		"86ccefed8fabd10101ee89ac9ae58a8ca965059da88592ad95d6be9e0107b2c598b9ef918bfb4906be81bfe6da82d5d3" +
		"7602cec19e98e38b89fe4c0180c5d1dee78098d2070298e2f3e0f899eea19c01028cccaed4e3a4ad80bb0102cafca0b1" +
		"c0db8e8f810105c1d0c5dfb88fa6b24901e891e6cda2939aedf5010c019a01ce86cee7ffead1c9890100fedfb4bf9ecc" +
		"bf877e0080cbebc0ae91f0fde7010da2dad6efb0c083e0830106c5bea29687e8bac41d03d5a7b6bce39a86bd61048889" +
		"9085f8d5c1ef371cbe81bfe6da82d5d37602cec19e98e38b89fe4c0398e2f3e0f899eea19c01028cccaed4e3a4ad80bb" +
		"0107c1d0c5dfb88fa6b2490c015ab2bcf6aea19db2f16008bb82db88c4aff3d9950109e5b5a5e2cdd5a084e50106fd80" +
		"fda1dfa1d7a3de010692d99aa692908180e70106ee8e9c8988c1cad02908b5e2b0f8bac0f586e90103f49ba48f9de6e9" +
		"c03212ce86cee7ffead1c9890100fedfb4bf9eccbf877e0080cbebc0ae91f0fde70116d5a7b6bce39a86bd6107002fd5" +
		"91a7ef96878d97d9010390a4b8c6e79cadaa7103a5be9bd6cd83f6a86e2dbb82db88c4aff3d995011bee8e9c8988c1ca" +
		"d02908b5e2b0f8bac0f586e9011580cbebc0ae91f0fde70103003290a4b8c6e79cadaa7130bb82db88c4aff3d9950138" +
		"80cbebc0ae91f0fde701010062bb82db88c4aff3d9950100000c01d201cec19e98e38b89fe4c00c4bee3fd9daeb5ed4c" +
		"0180c5d1dee78098d2070298c0fac687a484d3520098e2f3e0f899eea19c01028cccaed4e3a4ad80bb0102cafca0b1c0" +
		"db8e8f810102bd8499d9c58d9b913800fada9fd3a8fdadcb60028288b1d789f3b281f30101c1d0c5dfb88fa6b24901e8" +
		"91e6cda2939aedf5010c01be01ee89ac9ae58a8ca96503c79fe5fc81a9fdccf0010593ba8c8c9b94ecf35e03d6bfb8da" +
		"dfc9ee886f028d8e93959c9afbaefb0102a5b79bf38eeeb19fa30103be81bfe6da82d5d37602c4bee3fd9daeb5ed4c03" +
		"98c0fac687a484d35206bd8499d9c58d9b913800fada9fd3a8fdadcb6004e891e6cda2939aedf5010c018e01b89adcf8" +
		"9d82b0a65705c1e4ebf0bbd186fd3f0783b3f1d4cb83f3cda00118d7dba2ff85d7f2a8170288899085f8d5c1ef370685" +
		"dde794acdcd7967704ee89ac9ae58a8ca9650893ba8c8c9b94ecf35e03d6bfb8dadfc9ee886f04a5b79bf38eeeb19fa3" +
		"010ebd8499d9c58d9b913804e891e6cda2939aedf5010c0145c8d7afe496828bf0d90104e0beae94f3d5ad86be011ab8" +
		"96a1b6bcaf999c5804b1df81dcfed58990860113e2ab97e5c09bff9adf010186e0f5a9a49ae0b52e10ecdcceae90f2d3" +
		"8e270f83b3f1d4cb83f3cda0011a88899085f8d5c1ef370685dde794acdcd7967713a5b79bf38eeeb19fa30112e891e6" +
		"cda2939aedf5010a0022e0c7ccb1b380a387a30108e7d888ecdebb96ab3f1bedffd29ac1f1d3927600c8d7afe496828b" +
		"f0d90104e0beae94f3d5ad86be013286e0f5a9a49ae0b52e3988899085f8d5c1ef370685dde794acdcd7967713a5b79b" +
		"f38eeeb19fa30112e891e6cda2939aedf501050022e0c7ccb1b380a387a30108e7d888ecdebb96ab3f5186e0f5a9a49a" +
		"e0b52e3988899085f8d5c1ef3719a5b79bf38eeeb19fa30102007b86e0f5a9a49ae0b52e52a5b79bf38eeeb19fa30101" +
		"00cd01a5b79bf38eeeb19fa301"
)

func dwGoldenConfig() Config {
	return Config{Length: 500, Epsilon: 0.08, UpperBound: 2000, Seed: 7}
}

func rwGoldenConfig() Config {
	return Config{Length: 200, Epsilon: 0.6, Delta: 0.3, UpperBound: 400, Seed: 11}
}

func TestGoldenDWDecode(t *testing.T) {
	w, err := UnmarshalDW(mustGolden(t, dwGoldenHex))
	if err != nil {
		t.Fatalf("decoding golden DW: %v", err)
	}
	if got := w.Now(); got != 1262 {
		t.Errorf("Now = %d, want 1262", got)
	}
	if got := w.rank; got != 931 {
		t.Errorf("rank = %d, want 931", got)
	}
	if got := w.EstimateWindow(); got != 339.5 {
		t.Errorf("EstimateWindow = %v, want 339.5", got)
	}
	if got := w.EstimateRange(100); got != 53.5 {
		t.Errorf("EstimateRange(100) = %v, want 53.5", got)
	}
	if enc := w.Marshal(); !bytes.Equal(enc, mustGolden(t, dwGoldenHex)) {
		t.Error("re-encoding golden DW changed its bytes")
	}

	m, err := UnmarshalDW(mustGolden(t, dwMergeGoldenHex))
	if err != nil {
		t.Fatalf("decoding golden merged DW: %v", err)
	}
	if got := m.Now(); got != 1262 {
		t.Errorf("merged Now = %d, want 1262", got)
	}
	if got := m.rank; got != 489 {
		t.Errorf("merged rank = %d, want 489", got)
	}
	if got := m.EstimateWindow(); got != 345.5 {
		t.Errorf("merged EstimateWindow = %v, want 345.5", got)
	}
}

func TestGoldenRWDecode(t *testing.T) {
	w, err := UnmarshalRW(mustGolden(t, rwGoldenHex))
	if err != nil {
		t.Fatalf("decoding golden RW: %v", err)
	}
	if got := w.Now(); got != 233 {
		t.Errorf("Now = %d, want 233", got)
	}
	if got := w.count; got != 150 {
		t.Errorf("count = %d, want 150", got)
	}
	if got, want := w.Copies(), 3; got != want {
		t.Errorf("Copies = %d, want %d", got, want)
	}
	if got, want := w.Levels(), 8; got != want {
		t.Errorf("Levels = %d, want %d", got, want)
	}
	if got := w.EstimateWindow(); got != 112 {
		t.Errorf("EstimateWindow = %v, want 112", got)
	}
	if enc := w.Marshal(); !bytes.Equal(enc, mustGolden(t, rwGoldenHex)) {
		t.Error("re-encoding golden RW changed its bytes")
	}
}

// TestDWBankGolden round-trips the pre-arena golden vector through a bank
// cell: decode, identical answers, byte-identical re-encode, bare-form delta
// round trip, and rejection of mismatched configs, shapes and garbage.
func TestDWBankGolden(t *testing.T) {
	golden := mustGolden(t, dwGoldenHex)
	b, err := NewDWBank(dwGoldenConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalCell(2, golden); err != nil {
		t.Fatalf("decoding golden DW into bank cell: %v", err)
	}
	if got := b.Now(2); got != 1262 {
		t.Errorf("Now = %d, want 1262", got)
	}
	if got := b.Rank(2); got != 931 {
		t.Errorf("Rank = %d, want 931", got)
	}
	if got := b.EstimateWindow(2); got != 339.5 {
		t.Errorf("EstimateWindow = %v, want 339.5", got)
	}
	if got := b.EstimateRange(2, 100); got != 53.5 {
		t.Errorf("EstimateRange(100) = %v, want 53.5", got)
	}
	enc := b.AppendMarshalCell(nil, 2)
	if !bytes.Equal(enc, golden) {
		t.Error("bank re-encoding of golden DW changed its bytes")
	}
	if got, want := b.MarshalCellSize(2), len(enc); got != want {
		t.Errorf("MarshalCellSize = %d, encoding is %d bytes", got, want)
	}

	// Bare form drops exactly the config bytes and round-trips through an
	// empty cell of a compatible bank.
	bare := b.AppendMarshalCellBare(nil, 2)
	if want := len(golden) - configSize(b.Config()); len(bare) != want {
		t.Errorf("bare encoding is %d bytes, want %d", len(bare), want)
	}
	b2, err := NewDWBank(dwGoldenConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.UnmarshalCell(0, bare); err != nil {
		t.Fatalf("decoding bare DW cell: %v", err)
	}
	if !bytes.Equal(b2.AppendMarshalCell(nil, 0), golden) {
		t.Error("bare round trip does not reproduce the full encoding")
	}

	// A bank with a different config must reject the full form (config
	// mismatch) — and the bare form too, via the level-count shape check.
	other := dwGoldenConfig()
	other.Epsilon = 0.3
	b3, err := NewDWBank(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b3.UnmarshalCell(0, golden); err == nil {
		t.Error("mismatched config accepted")
	}
	if err := b3.UnmarshalCell(0, bare); err == nil {
		t.Error("mismatched bare shape accepted")
	}
	if err := b2.UnmarshalCell(0, []byte{wireRW}); err == nil {
		t.Error("RW tag accepted by DW bank")
	}
	for cut := 1; cut < len(golden); cut += 37 {
		fresh, err := NewDWBank(dwGoldenConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalCell(0, golden[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestRWBankGolden mirrors TestDWBankGolden for the randomized wave bank.
func TestRWBankGolden(t *testing.T) {
	golden := mustGolden(t, rwGoldenHex)
	b, err := NewRWBank(rwGoldenConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.UnmarshalCell(1, golden); err != nil {
		t.Fatalf("decoding golden RW into bank cell: %v", err)
	}
	if got := b.Now(1); got != 233 {
		t.Errorf("Now = %d, want 233", got)
	}
	if got := b.Count(1); got != 150 {
		t.Errorf("Count = %d, want 150", got)
	}
	if got := b.EstimateWindow(1); got != 112 {
		t.Errorf("EstimateWindow = %v, want 112", got)
	}
	enc := b.AppendMarshalCell(nil, 1)
	if !bytes.Equal(enc, golden) {
		t.Error("bank re-encoding of golden RW changed its bytes")
	}
	if got, want := b.MarshalCellSize(1), len(enc); got != want {
		t.Errorf("MarshalCellSize = %d, encoding is %d bytes", got, want)
	}

	bare := b.AppendMarshalCellBare(nil, 1)
	if want := len(golden) - configSize(b.Config()); len(bare) != want {
		t.Errorf("bare encoding is %d bytes, want %d", len(bare), want)
	}
	b2, err := NewRWBank(rwGoldenConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.UnmarshalCell(0, bare); err != nil {
		t.Fatalf("decoding bare RW cell: %v", err)
	}
	if !bytes.Equal(b2.AppendMarshalCell(nil, 0), golden) {
		t.Error("bare round trip does not reproduce the full encoding")
	}

	other := rwGoldenConfig()
	other.Delta = 0.01 // more repetitions: shape mismatch
	b3, err := NewRWBank(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b3.UnmarshalCell(0, golden); err == nil {
		t.Error("mismatched config accepted")
	}
	if err := b3.UnmarshalCell(0, bare); err == nil {
		t.Error("mismatched bare shape accepted")
	}
	if err := b2.UnmarshalCell(0, []byte{wireDW}); err == nil {
		t.Error("DW tag accepted by RW bank")
	}
	for cut := 1; cut < len(golden); cut += 131 {
		fresh, err := NewRWBank(rwGoldenConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalCell(0, golden[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// xorshift64 is the deterministic stream driver shared by the equivalence
// tests below.
func xorshift64(s *uint64) uint64 {
	*s ^= *s << 13
	*s ^= *s >> 7
	*s ^= *s << 17
	return *s
}

// TestDWBankMatchesDW drives a bank and per-object waves with the same
// streams and requires bit-identical estimates and byte-identical encodings
// at every checkpoint.
func TestDWBankMatchesDW(t *testing.T) {
	cfg := Config{Length: 300, Epsilon: 0.12, UpperBound: 5000, Seed: 3}
	const n = 6
	b, err := NewDWBank(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*DW, n)
	for i := range refs {
		if refs[i], err = NewDW(cfg); err != nil {
			t.Fatal(err)
		}
	}
	nows := make([]Tick, n)
	seed := uint64(0xABCDEF12345)
	for step := 0; step < 4000; step++ {
		i := int(xorshift64(&seed) % n)
		nows[i] += xorshift64(&seed) % 6
		switch xorshift64(&seed) % 8 {
		case 0: // pure advance, occasionally far ahead
			adv := nows[i] + xorshift64(&seed)%400
			b.Advance(i, adv)
			refs[i].Advance(adv)
		case 1: // burst
			k := xorshift64(&seed) % 40
			b.AddN(i, nows[i], k)
			refs[i].AddN(nows[i], k)
		default:
			b.Add(i, nows[i])
			refs[i].Add(nows[i])
		}
		if step%97 == 0 {
			j := int(xorshift64(&seed) % n)
			since := Tick(xorshift64(&seed) % 700)
			if got, want := b.EstimateSince(j, since), refs[j].EstimateSince(since); got != want {
				t.Fatalf("step %d cell %d: EstimateSince(%d) = %v, per-object %v", step, j, since, got, want)
			}
		}
	}
	for i := 0; i < n; i++ {
		if got, want := b.Now(i), refs[i].Now(); got != want {
			t.Errorf("cell %d: Now = %d, per-object %d", i, got, want)
		}
		if got, want := b.EstimateWindow(i), refs[i].EstimateWindow(); got != want {
			t.Errorf("cell %d: EstimateWindow = %v, per-object %v", i, got, want)
		}
		if got, want := b.AppendMarshalCell(nil, i), refs[i].Marshal(); !bytes.Equal(got, want) {
			t.Errorf("cell %d: bank encoding differs from per-object encoding", i)
		}
	}
}

// TestRWBankMatchesRW is the randomized-wave equivalent: identical salts make
// the auto-generated identifiers (and hence all bytes) deterministic.
func TestRWBankMatchesRW(t *testing.T) {
	cfg := Config{Length: 250, Epsilon: 0.5, Delta: 0.25, UpperBound: 3000, Seed: 17}
	const n = 4
	b, err := NewRWBank(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*RW, n)
	for i := range refs {
		if refs[i], err = NewRW(cfg); err != nil {
			t.Fatal(err)
		}
		salt := uint64(0xFEED_0000_0000_0000) + uint64(i)
		refs[i].SetIDSalt(salt)
		b.SetCellIDSalt(i, salt)
	}
	nows := make([]Tick, n)
	seed := uint64(0x1234_5678_9ABC)
	for step := 0; step < 3000; step++ {
		i := int(xorshift64(&seed) % n)
		nows[i] += xorshift64(&seed) % 4
		switch xorshift64(&seed) % 8 {
		case 0:
			adv := nows[i] + xorshift64(&seed)%300
			b.Advance(i, adv)
			refs[i].Advance(adv)
		case 1: // explicit identifier (duplicate-insensitive path)
			id := xorshift64(&seed) % 512
			b.AddID(i, nows[i], id)
			refs[i].AddID(nows[i], id)
		default:
			b.Add(i, nows[i])
			refs[i].Add(nows[i])
		}
		if step%89 == 0 {
			j := int(xorshift64(&seed) % n)
			since := Tick(xorshift64(&seed) % 600)
			if got, want := b.EstimateSince(j, since), refs[j].EstimateSince(since); got != want {
				t.Fatalf("step %d cell %d: EstimateSince(%d) = %v, per-object %v", step, j, since, got, want)
			}
		}
	}
	for i := 0; i < n; i++ {
		if got, want := b.Now(i), refs[i].Now(); got != want {
			t.Errorf("cell %d: Now = %d, per-object %d", i, got, want)
		}
		if got, want := b.EstimateWindow(i), refs[i].EstimateWindow(); got != want {
			t.Errorf("cell %d: EstimateWindow = %v, per-object %v", i, got, want)
		}
		if got, want := b.AppendMarshalCell(nil, i), refs[i].Marshal(); !bytes.Equal(got, want) {
			t.Errorf("cell %d: bank encoding differs from per-object encoding", i)
		}
	}
}

// TestDWBankMergeMatchesMergeDW checks that bank cell merges produce the
// exact bytes the per-object order-preserving aggregation produces.
func TestDWBankMergeMatchesMergeDW(t *testing.T) {
	cfg := Config{Length: 400, Epsilon: 0.15, UpperBound: 4000, Seed: 9}
	const n = 3
	banks := make([]*DWBank, 2)
	waves := make([][]*DW, 2)
	seed := uint64(0xC0FFEE)
	for s := range banks {
		var err error
		if banks[s], err = NewDWBank(cfg, n); err != nil {
			t.Fatal(err)
		}
		waves[s] = make([]*DW, n)
		for i := range waves[s] {
			if waves[s][i], err = NewDW(cfg); err != nil {
				t.Fatal(err)
			}
			var now Tick
			steps := 200 + int(xorshift64(&seed)%400)
			for k := 0; k < steps; k++ {
				now += xorshift64(&seed) % 5
				cnt := xorshift64(&seed) % 4
				banks[s].AddN(i, now, cnt)
				waves[s][i].AddN(now, cnt)
			}
		}
	}
	out, err := NewDWBank(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ref, err := MergeDW(cfg, waves[0][i], waves[1][i])
		if err != nil {
			t.Fatal(err)
		}
		now := banks[0].Now(i)
		if t2 := banks[1].Now(i); t2 > now {
			now = t2
		}
		out.MergeCell(i, now, []*DWBank{banks[0], banks[1]})
		if got, want := out.AppendMarshalCell(nil, i), ref.Marshal(); !bytes.Equal(got, want) {
			t.Errorf("cell %d: bank merge encoding differs from MergeDW", i)
		}
	}
}

// TestRWBankMergeMatchesMergeRW checks the position-wise union against the
// per-object merge. MergeRW draws a random salt for the merged wave (nothing
// pins it); the bank derives a deterministic fold of the input salts, so the
// test sets the per-object salt to the same fold before comparing bytes.
func TestRWBankMergeMatchesMergeRW(t *testing.T) {
	cfg := Config{Length: 300, Epsilon: 0.45, Delta: 0.3, UpperBound: 2000, Seed: 23}
	const n = 3
	banks := make([]*RWBank, 2)
	waves := make([][]*RW, 2)
	seed := uint64(0xDEADBEA7)
	for s := range banks {
		var err error
		if banks[s], err = NewRWBank(cfg, n); err != nil {
			t.Fatal(err)
		}
		waves[s] = make([]*RW, n)
		for i := range waves[s] {
			if waves[s][i], err = NewRW(cfg); err != nil {
				t.Fatal(err)
			}
			salt := xorshift64(&seed)
			waves[s][i].SetIDSalt(salt)
			banks[s].SetCellIDSalt(i, salt)
			var now Tick
			steps := 150 + int(xorshift64(&seed)%300)
			for k := 0; k < steps; k++ {
				now += xorshift64(&seed) % 4
				banks[s].Add(i, now)
				waves[s][i].Add(now)
			}
		}
	}
	out, err := NewRWBank(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ref, err := MergeRW(cfg, waves[0][i], waves[1][i])
		if err != nil {
			t.Fatal(err)
		}
		out.MergeCell(i, []*RWBank{banks[0], banks[1]})
		salt := uint64(0x9e3779b97f4a7c15)
		salt = hashing.Mix64(salt ^ banks[0].cells[i].salt)
		salt = hashing.Mix64(salt ^ banks[1].cells[i].salt)
		ref.salt = salt
		ref.seq = 0
		if got, want := out.AppendMarshalCell(nil, i), ref.Marshal(); !bytes.Equal(got, want) {
			t.Errorf("cell %d: bank merge encoding differs from MergeRW", i)
		}
		if got, want := out.EstimateWindow(i), ref.EstimateWindow(); got != want {
			t.Errorf("cell %d: merged EstimateWindow = %v, per-object %v", i, got, want)
		}
	}
}

// TestDWBankVersioning pins the change-tracking contract shared with EHBank:
// arrivals and resets bump, advances and queries do not.
func TestDWBankVersioning(t *testing.T) {
	b, err := NewDWBank(Config{Length: 100, Epsilon: 0.2, UpperBound: 1000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	v0 := b.Version()
	b.Add(1, 10)
	if !b.CellChangedSince(1, v0) {
		t.Error("Add did not mark the cell changed")
	}
	if b.CellChangedSince(0, v0) {
		t.Error("untouched cell marked changed")
	}
	v1 := b.Version()
	b.Advance(1, 500)
	b.AdvanceAll(600)
	_ = b.EstimateWindow(1)
	if b.Version() != v1 {
		t.Error("advance or query bumped the version")
	}
	if b.CellChangedSince(1, v1) {
		t.Error("advance marked the cell changed")
	}
	b.AddN(2, 700, 0) // zero arrivals is an advance
	if b.Version() != v1 {
		t.Error("AddN(0) bumped the version")
	}
	b.ResetCell(1)
	if !b.CellChangedSince(1, v1) {
		t.Error("ResetCell did not mark the cell changed")
	}
	v2 := b.Version()
	b.Reset()
	for i := 0; i < b.Len(); i++ {
		if !b.CellChangedSince(i, v2) {
			t.Errorf("Reset did not mark cell %d changed", i)
		}
	}
}

// TestRWBankResetRefill verifies that Reset reclaims the arena but keeps the
// per-cell salts, so an identical refill reproduces identical bytes.
func TestRWBankResetRefill(t *testing.T) {
	cfg := Config{Length: 120, Epsilon: 0.5, Delta: 0.3, UpperBound: 600, Seed: 5}
	b, err := NewRWBank(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	fill := func() {
		var now Tick
		seed := uint64(42)
		for k := 0; k < 400; k++ {
			now += xorshift64(&seed) % 3
			b.Add(int(xorshift64(&seed)%2), now)
		}
	}
	fill()
	first := b.AppendMarshalCell(nil, 0)
	first = b.AppendMarshalCell(first, 1)
	mem := b.MemoryBytes()
	b.Reset()
	fill()
	second := b.AppendMarshalCell(nil, 0)
	second = b.AppendMarshalCell(second, 1)
	if !bytes.Equal(first, second) {
		t.Error("refill after Reset produced different bytes")
	}
	if got := b.MemoryBytes(); got > mem {
		t.Errorf("refill grew the arena: %d > %d bytes", got, mem)
	}
}

// TestWaveBankClone verifies deep independence of clones for both banks.
func TestWaveBankClone(t *testing.T) {
	dcfg := Config{Length: 90, Epsilon: 0.25, UpperBound: 900, Seed: 2}
	db, err := NewDWBank(dcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 300; k++ {
		db.Add(k%2, Tick(k))
	}
	dc := db.Clone()
	if !bytes.Equal(db.AppendMarshalCell(nil, 0), dc.AppendMarshalCell(nil, 0)) {
		t.Error("DW clone encodes differently")
	}
	before := dc.EstimateWindow(0)
	for k := 301; k <= 600; k++ {
		db.Add(0, Tick(k))
	}
	if got := dc.EstimateWindow(0); got != before {
		t.Error("mutating the DW source changed the clone")
	}

	rcfg := Config{Length: 90, Epsilon: 0.6, Delta: 0.3, UpperBound: 900, Seed: 2}
	rb, err := NewRWBank(rcfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 300; k++ {
		rb.Add(k%2, Tick(k))
	}
	rc := rb.Clone()
	if !bytes.Equal(rb.AppendMarshalCell(nil, 1), rc.AppendMarshalCell(nil, 1)) {
		t.Error("RW clone encodes differently")
	}
	rBefore := rc.EstimateWindow(1)
	for k := 301; k <= 600; k++ {
		rb.Add(1, Tick(k))
	}
	if got := rc.EstimateWindow(1); got != rBefore {
		t.Error("mutating the RW source changed the clone")
	}
}

// FuzzWaveBank feeds byte-driven op sequences to a DW bank cell and a RW bank
// cell alongside their per-object twins and requires identical estimates and
// identical encodings, then round-trips the encodings through fresh banks.
func FuzzWaveBank(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 0, 255, 7}, uint16(50))
	f.Add([]byte{0, 0, 0, 0, 200, 200, 9, 9, 9, 1}, uint16(0))
	f.Fuzz(func(t *testing.T, ops []byte, since uint16) {
		dcfg := Config{Length: 64, Epsilon: 0.3, UpperBound: 512, Seed: 1}
		rcfg := Config{Length: 64, Epsilon: 0.7, Delta: 0.4, UpperBound: 512, Seed: 1}
		db, err := NewDWBank(dcfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		dw, err := NewDW(dcfg)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := NewRWBank(rcfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := NewRW(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		rw.SetIDSalt(99)
		rb.SetCellIDSalt(1, 99)
		var now Tick
		for _, op := range ops {
			now += Tick(op % 7)
			switch {
			case op%11 == 0:
				adv := now + Tick(op)
				db.Advance(1, adv)
				dw.Advance(adv)
				rb.Advance(1, adv)
				rw.Advance(adv)
			case op%5 == 0:
				cnt := uint64(op % 19)
				db.AddN(1, now, cnt)
				dw.AddN(now, cnt)
				rb.AddID(1, now, uint64(op))
				rw.AddID(now, uint64(op))
			default:
				db.Add(1, now)
				dw.Add(now)
				rb.Add(1, now)
				rw.Add(now)
			}
		}
		s := Tick(since)
		if got, want := db.EstimateSince(1, s), dw.EstimateSince(s); got != want {
			t.Fatalf("DW EstimateSince(%d) = %v, per-object %v", s, got, want)
		}
		if got, want := rb.EstimateSince(1, s), rw.EstimateSince(s); got != want {
			t.Fatalf("RW EstimateSince(%d) = %v, per-object %v", s, got, want)
		}
		denc := db.AppendMarshalCell(nil, 1)
		if !bytes.Equal(denc, dw.Marshal()) {
			t.Fatal("DW bank and per-object encodings differ")
		}
		renc := rb.AppendMarshalCell(nil, 1)
		if !bytes.Equal(renc, rw.Marshal()) {
			t.Fatal("RW bank and per-object encodings differ")
		}
		db2, err := NewDWBank(dcfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := db2.UnmarshalCell(0, denc); err != nil {
			t.Fatalf("round-tripping DW cell: %v", err)
		}
		if !bytes.Equal(db2.AppendMarshalCell(nil, 0), denc) {
			t.Fatal("DW round trip changed bytes")
		}
		rb2, err := NewRWBank(rcfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := rb2.UnmarshalCell(0, renc); err != nil {
			t.Fatalf("round-tripping RW cell: %v", err)
		}
		if !bytes.Equal(rb2.AppendMarshalCell(nil, 0), renc) {
			t.Fatal("RW round trip changed bytes")
		}
	})
}
