package window

import (
	"math"
	"math/bits"
)

// DWConst is the deterministic wave with the paper's strict O(1) worst-case
// update: each arrival is stored in exactly ONE level queue — the level
// equal to the number of trailing zeros of its rank — instead of in every
// level it belongs to. The multiples of 2^j are then reconstructed as the
// union of levels j..L, which is complete over any rank span that every one
// of those levels still retains.
//
// Space is identical to DW (L+1 levels × c entries); queries pay an extra
// O(L) factor for the per-level merge, matching the paper's query column.
// DW (the multi-placement variant) remains the default inside ECM-sketches:
// its queries are cheaper and its amortized update cost is the same; DWConst
// exists to demonstrate the constant-time-update point of Table 2 and for
// latency-critical ingestion paths.
type DWConst struct {
	cfg    Config
	c      int
	levels []entryDeque // level j holds entries with tz(rank) == j (top level: ≥ L)
	rank   uint64
	now    Tick
}

// NewDWConst constructs the constant-update wave.
func NewDWConst(cfg Config) (*DWConst, error) {
	if err := cfg.Validate(AlgoDW); err != nil {
		return nil, err
	}
	c := int(math.Ceil(1/cfg.Epsilon)) + 2
	L := waveLevels(cfg.UpperBound, c)
	w := &DWConst{cfg: cfg, c: c, levels: make([]entryDeque, L+1)}
	for i := range w.levels {
		w.levels[i] = newEntryDeque(c)
	}
	return w, nil
}

// Config returns the configuration the wave was built with.
func (w *DWConst) Config() Config { return w.cfg }

// Add registers one arrival at tick t with strict O(1) cost: one ring-buffer
// insertion, regardless of the rank's trailing-zero count.
func (w *DWConst) Add(t Tick) {
	if t == 0 {
		t = 1
	}
	if t < w.now {
		t = w.now
	}
	w.now = t
	w.rank++
	j := bits.TrailingZeros64(w.rank)
	if j >= len(w.levels) {
		j = len(w.levels) - 1
	}
	w.levels[j].pushBack(waveEntry{t: t, rank: w.rank})
	w.expireOne(j)
}

// AddN registers n arrivals at tick t.
func (w *DWConst) AddN(t Tick, n uint64) {
	for i := uint64(0); i < n; i++ {
		w.Add(t)
	}
	if n == 0 {
		w.Advance(t)
	}
}

// expireOne amortizes window expiry: each insertion pops at most a few
// stale fronts, keeping the worst-case update constant while queries finish
// the job for untouched levels.
func (w *DWConst) expireOne(j int) {
	if w.now < w.cfg.Length {
		return
	}
	cut := w.now - w.cfg.Length
	d := &w.levels[j]
	for k := 0; k < 2 && d.n > 0 && d.front().t <= cut; k++ {
		d.popFront()
	}
}

// Advance moves the window to tick t, expiring old entries everywhere.
func (w *DWConst) Advance(t Tick) {
	if t > w.now {
		w.now = t
	}
	if w.now < w.cfg.Length {
		return
	}
	cut := w.now - w.cfg.Length
	for j := range w.levels {
		d := &w.levels[j]
		for d.n > 0 && d.front().t <= cut {
			d.popFront()
		}
	}
}

// Now reports the latest observed tick.
func (w *DWConst) Now() Tick { return w.now }

// coverageRank returns the oldest rank R such that the union of levels j..L
// is guaranteed to contain every multiple of 2^j with rank ≥ R (ignoring
// window expiry, which only removes out-of-window content).
func (w *DWConst) coverageRank(j int) uint64 {
	var r uint64 = 1
	for k := j; k < len(w.levels); k++ {
		d := &w.levels[k]
		if !d.evicted {
			continue // level k still holds everything it ever received
		}
		if d.n == 0 {
			// Evicted and empty: nothing reconstructible at this granularity.
			return w.rank + 1
		}
		if fr := d.front().rank; fr > r {
			r = fr
		}
	}
	return r
}

// unionAfter scans levels j..L for entries with rank ≥ minRank and tick >
// since, returning how many there are and the minimum rank among them
// (0 when none).
func (w *DWConst) unionAfter(j int, minRank uint64, since Tick) (count uint64, oldestRank uint64) {
	for k := j; k < len(w.levels); k++ {
		d := &w.levels[k]
		idx := d.searchTickAfter(since)
		for ; idx < d.n; idx++ {
			e := d.at(idx)
			if e.rank < minRank {
				continue
			}
			count++
			if oldestRank == 0 || e.rank < oldestRank {
				oldestRank = e.rank
			}
		}
	}
	return count, oldestRank
}

// EstimateSince estimates the number of arrivals with tick > since.
func (w *DWConst) EstimateSince(since Tick) float64 {
	if w.rank == 0 {
		return 0
	}
	// Lazy expiry for levels not touched recently.
	w.Advance(w.now)
	if w.now >= w.cfg.Length {
		if ws := w.now - w.cfg.Length; since < ws {
			since = ws
		}
	}
	// Pick the finest level whose reconstructible span covers the boundary.
	for j := 0; j < len(w.levels); j++ {
		cov := w.coverageRank(j)
		if cov > w.rank {
			continue // nothing reconstructible at this granularity
		}
		covered := cov == 1 || w.unionHasTickAtOrBefore(j, cov, since)
		if !covered && j < len(w.levels)-1 {
			continue
		}
		_, oldest := w.unionAfter(j, cov, since)
		gap := float64(uint64(1)<<uint(j)-1) / 2
		if j == 0 && cov == 1 {
			gap = 0
		}
		if oldest == 0 {
			return gap
		}
		return float64(w.rank-oldest) + 1 + gap
	}
	return 0
}

// unionHasTickAtOrBefore reports whether the union of levels j..L retains an
// entry with rank ≥ minRank and tick ≤ since — i.e. the boundary falls
// inside the reconstructible span.
func (w *DWConst) unionHasTickAtOrBefore(j int, minRank uint64, since Tick) bool {
	for k := j; k < len(w.levels); k++ {
		d := &w.levels[k]
		idx := d.searchTickAfter(since)
		for i := 0; i < idx; i++ {
			if d.at(i).rank >= minRank {
				return true
			}
		}
	}
	return false
}

// EstimateRange estimates arrivals within the last r ticks.
func (w *DWConst) EstimateRange(r Tick) float64 {
	r = clampRange(r, w.cfg.Length)
	return w.EstimateSince(rangeToSince(w.now, r))
}

// EstimateWindow estimates arrivals within the whole window.
func (w *DWConst) EstimateWindow() float64 { return w.EstimateRange(w.cfg.Length) }

// MemoryBytes reports the (fixed) footprint.
func (w *DWConst) MemoryBytes() int {
	const entryBytes = 16
	n := 64
	for i := range w.levels {
		n += 40 + cap(w.levels[i].buf)*entryBytes
	}
	return n
}

// Reset empties the wave.
func (w *DWConst) Reset() {
	for i := range w.levels {
		w.levels[i].reset()
	}
	w.rank = 0
	w.now = 0
}
