package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustDWConst(t *testing.T, cfg Config) *DWConst {
	t.Helper()
	w, err := NewDWConst(cfg)
	if err != nil {
		t.Fatalf("NewDWConst: %v", err)
	}
	return w
}

func TestDWConstEmptyAndSmall(t *testing.T) {
	w := mustDWConst(t, Config{Length: 1000, Epsilon: 0.2})
	if got := w.EstimateWindow(); got != 0 {
		t.Errorf("empty EstimateWindow = %v", got)
	}
	for i := Tick(1); i <= 5; i++ {
		w.Add(i * 10)
	}
	for since := Tick(0); since <= 60; since += 5 {
		want := 0.0
		for i := Tick(1); i <= 5; i++ {
			if i*10 > since {
				want++
			}
		}
		if got := w.EstimateSince(since); got != want {
			t.Errorf("EstimateSince(%d) = %v, want %v", since, got, want)
		}
	}
}

func TestDWConstRelativeErrorBound(t *testing.T) {
	for _, eps := range []float64{0.05, 0.1, 0.25} {
		rng := rand.New(rand.NewSource(23))
		cfg := Config{Length: 5000, Epsilon: eps, UpperBound: 20000}
		w := mustDWConst(t, cfg)
		x := mustExact(t, cfg)
		var now Tick
		for i := 0; i < 20000; i++ {
			now += Tick(rng.Intn(3))
			w.Add(now)
			x.Add(now)
			if i%97 == 0 {
				checkSuffixQueries(t, "DWConst", w, x, eps, now, rng)
			}
		}
	}
}

func TestDWConstQuick(t *testing.T) {
	const eps = 0.15
	prop := func(gaps []uint8, queryAt uint16) bool {
		cfg := Config{Length: 300, Epsilon: eps, UpperBound: 2000}
		w, _ := NewDWConst(cfg)
		x, _ := NewExact(cfg)
		var now Tick
		for _, g := range gaps {
			now += Tick(g % 5)
			w.Add(now)
			x.Add(now)
		}
		since := Tick(queryAt)
		got := w.EstimateSince(since)
		want := float64(x.CountSince(since))
		return abs64(got-want) <= eps*want+0.5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDWConstExpiry(t *testing.T) {
	w := mustDWConst(t, Config{Length: 10, Epsilon: 0.1})
	w.Add(1)
	w.Add(2)
	w.Advance(100)
	if got := w.EstimateWindow(); got != 0 {
		t.Errorf("EstimateWindow after expiry = %v", got)
	}
	w.Reset()
	if w.Now() != 0 || w.EstimateWindow() != 0 {
		t.Error("Reset left state")
	}
}

func TestDWConstStrictlyOneInsertionPerAdd(t *testing.T) {
	// The defining property: total stored entries never exceed arrivals
	// (multi-placement DW stores ~2 per arrival on average).
	w := mustDWConst(t, Config{Length: 1 << 20, Epsilon: 0.1, UpperBound: 1 << 20})
	const n = 5000
	for i := Tick(1); i <= n; i++ {
		w.Add(i)
	}
	stored := 0
	for j := range w.levels {
		stored += w.levels[j].len()
	}
	if stored > n {
		t.Errorf("stored %d entries for %d arrivals; single placement violated", stored, n)
	}
	// And compared against DW: strictly fewer stored entries on the same
	// stream once capacities saturate.
	d := mustDW(t, Config{Length: 1 << 20, Epsilon: 0.1, UpperBound: 1 << 20})
	for i := Tick(1); i <= n; i++ {
		d.Add(i)
	}
	dwStored := 0
	for j := range d.levels {
		dwStored += d.levels[j].len()
	}
	t.Logf("DWConst stores %d entries, DW stores %d", stored, dwStored)
}

func TestDWConstAgreesWithDW(t *testing.T) {
	cfg := Config{Length: 2000, Epsilon: 0.1, UpperBound: 10000}
	a := mustDWConst(t, cfg)
	b := mustDW(t, cfg)
	rng := rand.New(rand.NewSource(12))
	var now Tick
	for i := 0; i < 10000; i++ {
		now += Tick(rng.Intn(2))
		a.Add(now)
		b.Add(now)
	}
	for _, r := range []Tick{2000, 1000, 400, 50} {
		ga, gb := a.EstimateRange(r), b.EstimateRange(r)
		base := gb
		if ga > base {
			base = ga
		}
		if base > 20 && abs64(ga-gb) > 0.25*base {
			t.Errorf("range %d: DWConst=%v DW=%v diverge", r, ga, gb)
		}
	}
}

func BenchmarkDWConstAdd(b *testing.B) {
	w, err := NewDWConst(Config{Length: 1 << 20, Epsilon: 0.1, UpperBound: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Add(Tick(i + 1))
	}
}
