// Package window implements the sliding-window counting synopses that back
// the counters of an ECM-sketch: exponential histograms (Datar et al.),
// deterministic waves and randomized waves (Gibbons & Tirthapura), plus an
// exact counter used as ground truth in tests and experiments.
//
// All synopses solve the basic-counting problem: maintain the number of
// arrivals ("true bits") inside a sliding window of length N, where N is
// either a span of time units (time-based model) or a number of stream
// arrivals (count-based model). Both models are driven through the same
// interface: the caller supplies a monotonically non-decreasing Tick with
// every arrival — a timestamp in the time-based model, the global arrival
// sequence number in the count-based model.
package window

import (
	"errors"
	"fmt"
)

// Tick is a logical timestamp. Time-based windows measure ticks in the
// caller's time unit (e.g. milliseconds); count-based windows measure ticks
// in stream arrivals. Ticks are 1-based: tick 0 means "before the stream",
// and arrivals stamped 0 are clamped to tick 1.
type Tick = uint64

// Model selects how the sliding window is measured.
type Model uint8

const (
	// TimeBased windows cover the last N time units.
	TimeBased Model = iota
	// CountBased windows cover the last N stream arrivals.
	CountBased
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case TimeBased:
		return "time-based"
	case CountBased:
		return "count-based"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// Algorithm selects the synopsis implementation behind a Counter.
type Algorithm uint8

const (
	// AlgoEH is the exponential histogram — the paper's default choice.
	AlgoEH Algorithm = iota
	// AlgoDW is the deterministic wave.
	AlgoDW
	// AlgoRW is the randomized wave.
	AlgoRW
	// AlgoExact is an exact counter, used as ground truth.
	AlgoExact
)

// String returns the algorithm name as used in the paper's plots.
func (a Algorithm) String() string {
	switch a {
	case AlgoEH:
		return "EH"
	case AlgoDW:
		return "DW"
	case AlgoRW:
		return "RW"
	case AlgoExact:
		return "Exact"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Config carries the parameters shared by all synopses.
type Config struct {
	// Model selects time-based or count-based windows.
	Model Model
	// Length is the window length N, in ticks.
	Length Tick
	// Epsilon is the maximum relative estimation error ε_sw of the synopsis.
	Epsilon float64
	// Delta is the failure probability of randomized synopses; ignored by
	// deterministic ones.
	Delta float64
	// UpperBound is u(N,S): an upper bound on the number of arrivals within
	// one window. Deterministic and randomized waves size their level
	// structure from it at initialization; exponential histograms ignore it.
	// Zero means "use Length", mirroring the paper's one-event-per-tick
	// default.
	UpperBound uint64
	// Seed derives hash functions for randomized synopses. Counters must
	// share a Seed to be mergeable.
	Seed uint64
}

// MinEpsilon is the smallest accepted per-counter error parameter. A window
// synopsis below it would allocate 10⁴+ buckets per counter — far past any
// sensible operating point — and, more importantly, the bound keeps
// adversarial serialized configurations from driving the Θ(1/ε) and Θ(1/ε²)
// level allocations into overflow.
const MinEpsilon = 1e-4

// MinDelta is the smallest accepted failure probability, bounding the
// repetition count of randomized synopses.
const MinDelta = 1e-9

// Validate checks the configuration, applying documented defaults.
func (c *Config) Validate(algo Algorithm) error {
	if c.Length == 0 {
		return errors.New("window: Length must be positive")
	}
	if algo != AlgoExact {
		if !(c.Epsilon >= MinEpsilon && c.Epsilon < 1) {
			return fmt.Errorf("window: Epsilon must be in [%v,1), got %v", MinEpsilon, c.Epsilon)
		}
	}
	if algo == AlgoRW {
		if !(c.Delta >= MinDelta && c.Delta < 1) {
			return fmt.Errorf("window: Delta must be in [%v,1) for RW, got %v", MinDelta, c.Delta)
		}
	}
	if c.UpperBound == 0 {
		c.UpperBound = uint64(c.Length)
	}
	return nil
}

// Counter is a sliding-window basic counter. Implementations estimate the
// number of arrivals inside any suffix of the window with bounded relative
// error.
//
// Ticks passed to Add/AddN/Advance must be non-decreasing; regressions are
// clamped, per the tick clamping contract documented on ecmsketch.Ingestor.
type Counter interface {
	// Add registers one arrival at tick t.
	Add(t Tick)
	// AddN registers n simultaneous arrivals at tick t.
	AddN(t Tick, n uint64)
	// Advance moves the window forward to tick t without an arrival,
	// expiring content that falls out of the window.
	Advance(t Tick)
	// Now reports the latest tick observed.
	Now() Tick
	// EstimateSince estimates the number of arrivals with tick strictly
	// greater than since (clamped to the window). Estimates are fractional
	// because straddling buckets contribute half their size.
	EstimateSince(since Tick) float64
	// EstimateRange estimates the arrivals within the last r ticks, i.e.
	// ticks in (Now()-r, Now()]. r is clamped to the window length.
	EstimateRange(r Tick) float64
	// EstimateWindow estimates the arrivals in the whole window.
	EstimateWindow() float64
	// MemoryBytes reports the current heap footprint of the synopsis.
	MemoryBytes() int
	// Reset empties the synopsis, keeping its configuration.
	Reset()
}

// New constructs a Counter for the given algorithm.
func New(algo Algorithm, cfg Config) (Counter, error) {
	if err := cfg.Validate(algo); err != nil {
		return nil, err
	}
	switch algo {
	case AlgoEH:
		return NewEH(cfg)
	case AlgoDW:
		return NewDW(cfg)
	case AlgoRW:
		return NewRW(cfg)
	case AlgoExact:
		return NewExact(cfg)
	default:
		return nil, fmt.Errorf("window: unknown algorithm %v", algo)
	}
}

// rangeToSince converts a query range r ending at now into the exclusive
// lower tick bound, saturating at zero.
func rangeToSince(now, r Tick) Tick {
	if r >= now {
		return 0
	}
	return now - r
}

// clampRange limits a query range to the window length.
func clampRange(r, n Tick) Tick {
	if r > n {
		return n
	}
	return r
}
