package wire_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"ecmsketch/internal/hashing"
	"ecmsketch/internal/wire"
)

func TestWantDirect(t *testing.T) {
	if !wire.WantDirect(httptest.NewRequest("GET", "/v1/query?direct=1", nil)) {
		t.Error("direct=1 not recognized")
	}
	for _, u := range []string{"/v1/query", "/v1/query?direct=0", "/v1/query?direct=true"} {
		if wire.WantDirect(httptest.NewRequest("GET", u, nil)) {
			t.Errorf("%s treated as direct", u)
		}
	}
}

// TestParseQueryParams pins the GET form of /v1/query: interleaved key= and
// ikey= parameters keep request order, range/total/selfJoin parse, and the
// key cap plus malformed inputs reject.
func TestParseQueryParams(t *testing.T) {
	r := httptest.NewRequest("GET",
		"/v1/query?ikey=42&key=%2Fhome&ikey=7&range=500&total=1&selfJoin=1", nil)
	q, err := wire.ParseQueryParams(r)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{42, hashing.KeyString("/home"), 7}
	if len(q.Keys) != 3 {
		t.Fatalf("keys = %v, want 3 entries", q.Keys)
	}
	for i := range want {
		if q.Keys[i] != want[i] {
			t.Errorf("key %d = %d, want %d (order must follow the query string)", i, q.Keys[i], want[i])
		}
	}
	if q.Range != 500 || !q.Total || !q.SelfJoin {
		t.Errorf("parsed batch = %+v", q)
	}

	if _, err := wire.ParseQueryParams(httptest.NewRequest("GET", "/v1/query?ikey=notanumber", nil)); err == nil {
		t.Error("bad ikey accepted")
	}
	if _, err := wire.ParseQueryParams(httptest.NewRequest("GET", "/v1/query?key=", nil)); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := wire.ParseQueryParams(httptest.NewRequest("GET", "/v1/query?range=-1", nil)); err == nil {
		t.Error("bad range accepted")
	}

	var sb strings.Builder
	sb.WriteString("/v1/query?")
	for i := 0; i <= wire.MaxQueryKeys; i++ {
		fmt.Fprintf(&sb, "ikey=%d&", i)
	}
	if _, err := wire.ParseQueryParams(httptest.NewRequest("GET", sb.String(), nil)); err == nil {
		t.Errorf("over-cap batch accepted (cap %d)", wire.MaxQueryKeys)
	}
}
