// Package wire is the shared /v1 HTTP codec of this repository: the
// request-parsing, reply-encoding and snapshot-transfer conventions that
// every tier serving (or consuming) the versioned API must agree on.
// ecmserver (the site server) and cmd/ecmcoord's -serve surface both build
// on it, so the two cannot drift; ecmclient and the coordinator's HTTP
// transport consume snapshots through it, so gzip negotiation and transfer
// accounting live in exactly one place.
//
// Conventions encoded here:
//
//   - Keys arrive as ?key= (string, digested with the library's KeyString)
//     or ?ikey= (decimal uint64 — 64-bit digests exceed the float64-exact
//     integer range of JSON, so they travel as strings everywhere).
//   - ?strings=1 opts a reply into decimal-string encoding for every
//     64-bit tick/count field (now, range, from, to, count, ...), for
//     JavaScript-family clients above 2^53.
//   - Snapshot payloads (full or delta) are application/octet-stream with
//     X-Ecm-Now/X-Ecm-Count advisory headers, X-Ecm-Cursor carrying the
//     delta-protocol cursor and X-Ecm-Delta naming the payload kind
//     ("full" or "delta"). Bodies gzip when the request offers
//     Accept-Encoding: gzip and the payload is big enough to care.
package wire

import (
	"bytes"
	"compress/gzip"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"ecmsketch/internal/core"
	"ecmsketch/internal/hashing"
)

// Snapshot-transfer headers of the /v1 protocol.
const (
	HeaderNow    = "X-Ecm-Now"
	HeaderCount  = "X-Ecm-Count"
	HeaderCursor = "X-Ecm-Cursor"
	HeaderKind   = "X-Ecm-Delta"
)

// Payload kinds carried in HeaderKind.
const (
	KindFull  = "full"
	KindDelta = "delta"
)

// MaxSnapshotBytes bounds any snapshot body read through this package
// (1 GiB, the historical ecmcoord limit), so a misbehaving peer cannot
// exhaust puller memory. The same cap applies after gzip expansion.
const MaxSnapshotBytes = 1 << 30

// gzipMinSize is the smallest payload worth compressing: delta payloads of
// a few dozen bytes would grow under the gzip header.
const gzipMinSize = 512

// Error writes the /v1 JSON error shape with the given status code.
func Error(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// Respond writes a 200 JSON reply.
func Respond(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// ParseKey resolves the queried item key from either ?key= (string,
// digested with the library digest) or ?ikey= (raw decimal uint64).
func ParseKey(r *http.Request) (uint64, error) {
	if k := r.URL.Query().Get("key"); k != "" {
		return hashing.KeyString(k), nil
	}
	if k := r.URL.Query().Get("ikey"); k != "" {
		v, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad ikey: %v", err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("missing key or ikey parameter")
}

// ParseU64 reads an optional uint64 query parameter.
func ParseU64(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// WantStrings reports whether the request opted into string-encoded 64-bit
// reply fields via ?strings=1. JSON numbers are read as float64 by
// JavaScript-family clients, which silently rounds integers past 2^53;
// request-side uint64 keys already travel as decimal strings (ikey), and
// this opt-in extends the same convention to 64-bit tick/count reply
// fields. Numeric replies stay the default for compatibility.
func WantStrings(r *http.Request) bool { return r.URL.Query().Get("strings") == "1" }

// U64Field renders a 64-bit tick/count reply field: a decimal string when
// the request opted in via ?strings=1, a JSON number otherwise.
func U64Field(asStrings bool, v uint64) any {
	if asStrings {
		return strconv.FormatUint(v, 10)
	}
	return v
}

// WantDirect reports whether a /v1/query request opted into the zero-merge
// direct read path via ?direct=1: each key answered from the single stripe
// that owns it, with no merged view built or consulted. The trade is
// documented on the DirectQuerier contract — zero merge error and no
// rebuild cost, but no consistency across the batch and point queries only
// (aggregates are rejected). Both the site server and the coordinator
// surface honor the same parameter, so a client can flip one query string
// without caring which tier answers.
func WantDirect(r *http.Request) bool { return r.URL.Query().Get("direct") == "1" }

// CheckBearer reports whether the request carries the expected bearer
// token. The comparison is constant-time in the token bytes, so a probing
// client learns nothing about how much of its guess matched. (Length still
// leaks, as with any constant-time compare of variable-length secrets;
// tokens are not guessable by length.)
func CheckBearer(r *http.Request, token string) bool {
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) < len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(token)) == 1
}

// RequireBearer wraps a handler with bearer-token auth: requests without
// the exact token get the /v1 JSON 401. An empty token disables auth and
// returns next unchanged, so servers thread their (possibly empty)
// configured token through unconditionally.
func RequireBearer(token string, next http.Handler) http.Handler {
	if token == "" {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !CheckBearer(r, token) {
			w.Header().Set("WWW-Authenticate", "Bearer")
			Error(w, http.StatusUnauthorized, errors.New("missing or invalid bearer token"))
			return
		}
		next.ServeHTTP(w, r)
	})
}

// MaxQueryKeys bounds the per-request key count of POST /v1/query. A batch
// of point queries is answered (and its result buffered) in full, so unlike
// the chunk-flushed ingest endpoints the request size itself must be
// capped; oversized batches are rejected with 400 before their tail is even
// parsed.
const MaxQueryKeys = 4096

// queryKey identifies one queried item on POST /v1/query: exactly one of
// Key (string, digested server-side) or IKey (decimal uint64 as a string).
type queryKey struct {
	Key  string `json:"key,omitempty"`
	IKey string `json:"ikey,omitempty"`
}

// ParseQueryBody decodes a POST /v1/query request body into a QueryBatch
// under the strict wire semantics of the versioned API: the body is decoded
// token by token with the keys array consumed element-wise, so request
// memory stays bounded — batches beyond MaxQueryKeys are rejected
// mid-stream, and duplicate or unknown fields are rejected rather than
// buffered. Every tier serving the route (ecmserver, the ecmcoord
// coordinator surface) validates through this one parser.
func ParseQueryBody(body io.Reader) (core.QueryBatch, error) {
	var q core.QueryBatch
	dec := json.NewDecoder(body)
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		return q, fmt.Errorf("bad query body: want a JSON object")
	}
	seen := map[string]bool{}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return q, fmt.Errorf("bad query body: %v", err)
		}
		field, _ := tok.(string)
		if seen[field] {
			// Rejecting duplicates keeps the parse strict (last-wins would
			// mask client bugs) and stops repeated keys arrays from evading
			// the per-query cap.
			return q, fmt.Errorf("duplicate query field %q", field)
		}
		seen[field] = true
		switch field {
		case "keys":
			if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
				return q, fmt.Errorf("bad query body: keys must be an array")
			}
			for dec.More() {
				if len(q.Keys) == MaxQueryKeys {
					return q, fmt.Errorf("too many keys: at most %d per query", MaxQueryKeys)
				}
				var wk queryKey
				if err := dec.Decode(&wk); err != nil {
					return q, fmt.Errorf("key %d: %v", len(q.Keys), err)
				}
				switch {
				case wk.Key != "":
					q.Keys = append(q.Keys, hashing.KeyString(wk.Key))
				case wk.IKey != "":
					v, err := strconv.ParseUint(wk.IKey, 10, 64)
					if err != nil {
						return q, fmt.Errorf("key %d: bad ikey: %v", len(q.Keys), err)
					}
					q.Keys = append(q.Keys, v)
				default:
					return q, fmt.Errorf("key %d: missing key or ikey", len(q.Keys))
				}
			}
			if tok, err := dec.Token(); err != nil || tok != json.Delim(']') {
				return q, fmt.Errorf("bad query body: unterminated keys array")
			}
		case "range":
			if err := dec.Decode(&q.Range); err != nil {
				return q, fmt.Errorf("bad range: %v", err)
			}
		case "total":
			if err := dec.Decode(&q.Total); err != nil {
				return q, fmt.Errorf("bad total: %v", err)
			}
		case "selfJoin":
			if err := dec.Decode(&q.SelfJoin); err != nil {
				return q, fmt.Errorf("bad selfJoin: %v", err)
			}
		default:
			return q, fmt.Errorf("unknown query field %q", field)
		}
	}
	if tok, err := dec.Token(); err != nil || tok != json.Delim('}') {
		return q, fmt.Errorf("bad query body: unterminated object")
	}
	return q, nil
}

// ParseQueryParams decodes the GET form of /v1/query from the URL query
// string: repeated key= (string, digested server-side) and ikey= (decimal
// uint64) parameters name the queried items — mixed freely, answered in
// request order — range= gives the window suffix, and total=1 / selfJoin=1
// request the aggregates. The POST body form (ParseQueryBody) and this one
// build the same QueryBatch, under the same MaxQueryKeys cap; GET is the
// curl-friendly spelling for short batches, POST the bulk one.
//
// The raw query string is walked parameter by parameter (rather than
// through url.Values, which buckets by name) so a request interleaving
// key= and ikey= parameters gets its estimates back in the order it asked.
func ParseQueryParams(r *http.Request) (core.QueryBatch, error) {
	var q core.QueryBatch
	raw := r.URL.RawQuery
	for raw != "" {
		var pair string
		pair, raw, _ = strings.Cut(raw, "&")
		if pair == "" {
			continue
		}
		rawName, rawVal, _ := strings.Cut(pair, "=")
		name, err := url.QueryUnescape(rawName)
		if err != nil {
			return q, fmt.Errorf("bad query parameter: %v", err)
		}
		if name != "key" && name != "ikey" {
			continue
		}
		if len(q.Keys) == MaxQueryKeys {
			return q, fmt.Errorf("too many keys: at most %d per query", MaxQueryKeys)
		}
		val, err := url.QueryUnescape(rawVal)
		if err != nil {
			return q, fmt.Errorf("bad %s parameter: %v", name, err)
		}
		if val == "" {
			return q, fmt.Errorf("key %d: empty %s parameter", len(q.Keys), name)
		}
		if name == "key" {
			q.Keys = append(q.Keys, hashing.KeyString(val))
			continue
		}
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return q, fmt.Errorf("key %d: bad ikey: %v", len(q.Keys), err)
		}
		q.Keys = append(q.Keys, v)
	}
	rng, err := ParseU64(r, "range", 0)
	if err != nil {
		return q, err
	}
	q.Range = rng
	q.Total = r.URL.Query().Get("total") == "1"
	q.SelfJoin = r.URL.Query().Get("selfJoin") == "1"
	return q, nil
}

// SnapshotMeta is the out-of-band half of a snapshot reply: advisory
// clock/count, and — when the delta protocol is in play — the cursor the
// payload brings the puller to plus the payload kind.
type SnapshotMeta struct {
	Now    uint64
	Count  uint64
	Cursor string // "" omits the header (legacy full replies)
	Kind   string // "", KindFull or KindDelta
}

// acceptsGzip reports whether the request offers gzip. Coding tokens are
// matched per comma-separated entry, with the qvalue parsed numerically so
// every RFC 9110 spelling of an explicit refusal ("q=0", "q=0.0",
// "q=0.000") is honored, not mistaken for an offer.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(enc), "gzip") {
			continue
		}
		if hasQ {
			qv := strings.TrimSpace(q)
			if cut, ok := strings.CutPrefix(qv, "q="); ok {
				if w, err := strconv.ParseFloat(strings.TrimSpace(cut), 64); err == nil && w == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

// WriteSnapshot ships one snapshot payload (full or delta) with the
// protocol headers, honoring Accept-Encoding: gzip for payloads worth
// compressing. Content-Length is always exact — pullers that count
// transferred bytes see the compressed size.
func WriteSnapshot(w http.ResponseWriter, r *http.Request, payload []byte, m SnapshotMeta) {
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderNow, strconv.FormatUint(m.Now, 10))
	h.Set(HeaderCount, strconv.FormatUint(m.Count, 10))
	if m.Cursor != "" {
		h.Set(HeaderCursor, m.Cursor)
	}
	if m.Kind != "" {
		h.Set(HeaderKind, m.Kind)
	}
	if len(payload) >= gzipMinSize && acceptsGzip(r) {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(payload) //nolint:errcheck // bytes.Buffer writes cannot fail
		zw.Close()        //nolint:errcheck
		h.Set("Content-Encoding", "gzip")
		h.Set("Vary", "Accept-Encoding")
		h.Set("Content-Length", strconv.Itoa(buf.Len()))
		w.Write(buf.Bytes())
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(payload)))
	w.Write(payload)
}

// SnapshotReply is one fetched snapshot: the decoded payload, the bytes
// that actually crossed the wire (compressed when the server gzipped), and
// the protocol headers. Status is returned without error for non-200
// replies so callers can branch (e.g. a 404 route fallback).
type SnapshotReply struct {
	Status  int
	Payload []byte
	Wire    int
	Now     uint64
	Count   uint64
	Cursor  string
	Kind    string
}

// FetchSnapshot GETs a snapshot URL, explicitly offering gzip (which
// disables Go's transparent decompression precisely so the raw transfer
// size can be measured) and decompressing the body when the server took the
// offer.
func FetchSnapshot(hc *http.Client, url string) (SnapshotReply, error) {
	return FetchSnapshotAuth(hc, url, "")
}

// FetchSnapshotAuth is FetchSnapshot with an optional bearer token ("" sends
// no Authorization header) for servers running with auth enabled.
func FetchSnapshotAuth(hc *http.Client, url, token string) (SnapshotReply, error) {
	var rep SnapshotReply
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return rep, err
	}
	req.Header.Set("Accept-Encoding", "gzip")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	rep.Status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck
		return rep, nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxSnapshotBytes))
	if err != nil {
		return rep, fmt.Errorf("reading snapshot body: %w", err)
	}
	rep.Wire = len(raw)
	if strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return rep, fmt.Errorf("bad gzip snapshot body: %w", err)
		}
		rep.Payload, err = io.ReadAll(io.LimitReader(zr, MaxSnapshotBytes))
		if err != nil {
			return rep, fmt.Errorf("decompressing snapshot body: %w", err)
		}
		if err := zr.Close(); err != nil {
			return rep, fmt.Errorf("bad gzip snapshot body: %w", err)
		}
	} else {
		rep.Payload = raw
	}
	if len(rep.Payload) == 0 {
		return rep, errors.New("empty snapshot body")
	}
	rep.Now, _ = strconv.ParseUint(resp.Header.Get(HeaderNow), 10, 64)
	rep.Count, _ = strconv.ParseUint(resp.Header.Get(HeaderCount), 10, 64)
	rep.Cursor = resp.Header.Get(HeaderCursor)
	rep.Kind = resp.Header.Get(HeaderKind)
	return rep, nil
}
