package wire_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ecmsketch/internal/wire"
)

// TestWriteFetchRoundTrip: the snapshot writer and fetcher agree — headers
// survive, gzip is negotiated for big payloads and skipped for small ones,
// and Wire reports the bytes that actually crossed.
func TestWriteFetchRoundTrip(t *testing.T) {
	big := bytes.Repeat([]byte("ecm snapshot payload "), 400) // compressible
	small := []byte{0xEF, 1, 2, 3}
	for _, tc := range []struct {
		name       string
		payload    []byte
		wantGzip   bool
		meta       wire.SnapshotMeta
		wantCursor string
		wantKind   string
	}{
		{"big-gzips", big, true, wire.SnapshotMeta{Now: 7, Count: 9, Cursor: "abc", Kind: wire.KindFull}, "abc", "full"},
		{"small-stays-identity", small, false, wire.SnapshotMeta{Now: 1, Count: 2, Kind: wire.KindDelta}, "", "delta"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				wire.WriteSnapshot(w, r, tc.payload, tc.meta)
			}))
			defer ts.Close()
			rep, err := wire.FetchSnapshot(http.DefaultClient, ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rep.Payload, tc.payload) {
				t.Fatal("payload did not round-trip")
			}
			if tc.wantGzip && rep.Wire >= len(tc.payload) {
				t.Fatalf("wire %dB not below payload %dB", rep.Wire, len(tc.payload))
			}
			if !tc.wantGzip && rep.Wire != len(tc.payload) {
				t.Fatalf("identity wire %dB != payload %dB", rep.Wire, len(tc.payload))
			}
			if rep.Now != tc.meta.Now || rep.Count != tc.meta.Count ||
				rep.Cursor != tc.wantCursor || rep.Kind != tc.wantKind {
				t.Fatalf("headers did not round-trip: %+v", rep)
			}
		})
	}
}

// TestGzipNegotiation: only genuine gzip offers compress; refusals and
// other codings stay identity.
func TestGzipNegotiation(t *testing.T) {
	big := bytes.Repeat([]byte("x"), 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		wire.WriteSnapshot(w, r, big, wire.SnapshotMeta{})
	}))
	defer ts.Close()
	for _, tc := range []struct {
		accept   string
		wantGzip bool
	}{
		{"gzip", true},
		{"GZIP", true},
		{"deflate, gzip;q=0.5", true},
		{"gzip;q=0", false},
		{"deflate", false},
		{"", false},
	} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
		if tc.accept != "" {
			req.Header.Set("Accept-Encoding", tc.accept)
		} else {
			req.Header.Set("Accept-Encoding", "identity")
		}
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		gz := strings.EqualFold(resp.Header.Get("Content-Encoding"), "gzip")
		resp.Body.Close()
		if gz != tc.wantGzip {
			t.Errorf("Accept-Encoding %q: gzip=%v, want %v", tc.accept, gz, tc.wantGzip)
		}
	}
}

// TestFetchSnapshotNon200: non-200 replies come back as a status without an
// error, so callers branch on route fallbacks.
func TestFetchSnapshotNon200(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	rep, err := wire.FetchSnapshot(http.DefaultClient, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != http.StatusNotFound || rep.Payload != nil {
		t.Fatalf("got %+v", rep)
	}
}
