package workload

import (
	"sort"

	"ecmsketch/internal/window"
)

// Oracle maintains exact sliding-window statistics of a stream: per-key
// frequencies, the total arrival count, and the self-join size. It is the
// ground truth the experiments measure observed errors against, mirroring
// how the paper's evaluation computes true answers from the raw trace.
//
// Memory grows with the number of distinct keys inside the window, which is
// acceptable at experiment scale but is exactly the cost sketches avoid.
type Oracle struct {
	length Tick
	perKey map[uint64]*window.Exact
	total  *window.Exact
	now    Tick
}

// NewOracle builds an oracle over a window of the given length.
func NewOracle(length Tick) *Oracle {
	tot, err := window.NewExact(window.Config{Length: length})
	if err != nil {
		panic("workload: NewOracle: " + err.Error()) // length==0 only
	}
	return &Oracle{length: length, perKey: make(map[uint64]*window.Exact), total: tot}
}

// Add registers one arrival.
func (o *Oracle) Add(key uint64, t Tick) {
	x, ok := o.perKey[key]
	if !ok {
		x, _ = window.NewExact(window.Config{Length: o.length})
		o.perKey[key] = x
	}
	x.Add(t)
	o.total.Add(t)
	if t > o.now {
		o.now = t
	}
}

// AddEvent registers a generated event.
func (o *Oracle) AddEvent(ev Event) { o.Add(ev.Key, ev.Time) }

// Advance moves the window forward without an arrival.
func (o *Oracle) Advance(t Tick) {
	if t > o.now {
		o.now = t
	}
}

// Now reports the latest tick observed.
func (o *Oracle) Now() Tick { return o.now }

// Freq returns the exact frequency of key within the last r ticks.
func (o *Oracle) Freq(key uint64, r Tick) uint64 {
	x, ok := o.perKey[key]
	if !ok {
		return 0
	}
	x.Advance(o.now)
	return x.CountRange(r)
}

// Total returns the exact number of arrivals within the last r ticks.
func (o *Oracle) Total(r Tick) uint64 {
	o.total.Advance(o.now)
	return o.total.CountRange(r)
}

// SelfJoin returns the exact second frequency moment within the last r
// ticks.
func (o *Oracle) SelfJoin(r Tick) float64 {
	var s float64
	for _, x := range o.perKey {
		x.Advance(o.now)
		f := float64(x.CountRange(r))
		s += f * f
	}
	return s
}

// InnerProduct returns the exact inner product of two oracles' streams
// within the last r ticks.
func (o *Oracle) InnerProduct(other *Oracle, r Tick) float64 {
	var s float64
	for k, x := range o.perKey {
		x.Advance(o.now)
		fa := float64(x.CountRange(r))
		if fa == 0 {
			continue
		}
		s += fa * float64(other.Freq(k, r))
	}
	return s
}

// HeavyHitters returns every key whose exact frequency within the last r
// ticks is at least phi·Total(r), sorted by frequency descending.
func (o *Oracle) HeavyHitters(phi float64, r Tick) []Event {
	thresh := phi * float64(o.Total(r))
	var out []Event
	for k, x := range o.perKey {
		x.Advance(o.now)
		if f := x.CountRange(r); float64(f) >= thresh && f > 0 {
			out = append(out, Event{Key: k, Time: Tick(f)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Keys returns every key currently known to the oracle (including keys whose
// window count may have dropped to zero). Intended for evaluation loops.
func (o *Oracle) Keys() []uint64 {
	out := make([]uint64, 0, len(o.perKey))
	for k := range o.perKey {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctKeys reports the number of keys with at least one arrival within
// the last r ticks.
func (o *Oracle) DistinctKeys(r Tick) int {
	n := 0
	for _, x := range o.perKey {
		x.Advance(o.now)
		if x.CountRange(r) > 0 {
			n++
		}
	}
	return n
}
