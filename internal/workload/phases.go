package workload

import (
	"fmt"
	"math/rand"
)

// Phase describes one regime of a phased stream: a number of events drawn
// from a key distribution, optionally concentrated on a hot key — the
// building block for flash-crowd, attack and failover scenarios that the
// steady-state generators cannot express.
type Phase struct {
	// Events emitted during this phase.
	Events int
	// HotKey receives HotShare of the phase's traffic when HotShare > 0.
	HotKey uint64
	// HotShare ∈ [0,1] is the fraction of events sent to HotKey.
	HotShare float64
	// Gap is the silent period (in ticks) inserted BEFORE the phase starts,
	// modelling quiet stretches that slide content out of the window.
	Gap Tick
}

// PhasedConfig drives NewPhasedGenerator.
type PhasedConfig struct {
	// KeyDomain and Skew shape the background traffic of every phase.
	KeyDomain int
	Skew      float64
	// TickStep is the mean tick advance per event.
	TickStep Tick
	// Sites spreads events round-robin.
	Sites int
	// Seed makes the stream reproducible.
	Seed int64
	// Phases run in order.
	Phases []Phase
}

// PhasedGenerator emits a multi-phase stream (normal → attack → recovery
// and similar shapes) with non-decreasing ticks.
type PhasedGenerator struct {
	cfg      PhasedConfig
	rng      *rand.Rand
	keys     *Zipf
	phase    int
	inPhase  int
	now      Tick
	site     int
	gapTaken bool
}

// NewPhasedGenerator validates the configuration and builds the generator.
func NewPhasedGenerator(cfg PhasedConfig) (*PhasedGenerator, error) {
	if cfg.KeyDomain <= 0 {
		return nil, fmt.Errorf("workload: KeyDomain must be positive, got %d", cfg.KeyDomain)
	}
	if cfg.Skew <= 0 {
		return nil, fmt.Errorf("workload: Skew must be positive, got %v", cfg.Skew)
	}
	if cfg.TickStep == 0 {
		cfg.TickStep = 1
	}
	if cfg.Sites <= 0 {
		cfg.Sites = 1
	}
	if len(cfg.Phases) == 0 {
		return nil, fmt.Errorf("workload: at least one phase required")
	}
	for i, p := range cfg.Phases {
		if p.Events <= 0 {
			return nil, fmt.Errorf("workload: phase %d has no events", i)
		}
		if p.HotShare < 0 || p.HotShare > 1 {
			return nil, fmt.Errorf("workload: phase %d HotShare %v outside [0,1]", i, p.HotShare)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys, err := NewZipf(rng, cfg.Skew, cfg.KeyDomain)
	if err != nil {
		return nil, err
	}
	return &PhasedGenerator{cfg: cfg, rng: rng, keys: keys}, nil
}

// Next emits the next event; ok is false when all phases are exhausted.
func (g *PhasedGenerator) Next() (ev Event, ok bool) {
	for g.phase < len(g.cfg.Phases) && g.inPhase >= g.cfg.Phases[g.phase].Events {
		g.phase++
		g.inPhase = 0
		g.gapTaken = false
	}
	if g.phase >= len(g.cfg.Phases) {
		return Event{}, false
	}
	p := g.cfg.Phases[g.phase]
	if !g.gapTaken {
		g.now += p.Gap
		g.gapTaken = true
	}
	g.inPhase++
	g.now += Tick(g.rng.Intn(int(2*g.cfg.TickStep + 1)))
	if g.now == 0 {
		g.now = 1
	}
	key := g.keys.Sample()
	if p.HotShare > 0 && g.rng.Float64() < p.HotShare {
		key = p.HotKey
	}
	g.site = (g.site + 1) % g.cfg.Sites
	return Event{Key: key, Time: g.now, Site: g.site}, true
}

// Drain produces the whole remaining stream at once.
func (g *PhasedGenerator) Drain() []Event {
	var out []Event
	for {
		ev, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// PhaseBoundaries returns the tick at which each phase ended, useful for
// placing interval queries in tests. Must be called after Drain.
func PhaseBoundaries(events []Event, cfg PhasedConfig) []Tick {
	var out []Tick
	idx := 0
	for _, p := range cfg.Phases {
		idx += p.Events
		if idx-1 < len(events) {
			out = append(out, events[idx-1].Time)
		}
	}
	return out
}
