package workload

import "testing"

func TestPhasedGeneratorValidation(t *testing.T) {
	bad := []PhasedConfig{
		{Skew: 1, Phases: []Phase{{Events: 10}}},                               // no domain
		{KeyDomain: 10, Phases: []Phase{{Events: 10}}},                         // no skew
		{KeyDomain: 10, Skew: 1},                                               // no phases
		{KeyDomain: 10, Skew: 1, Phases: []Phase{{Events: 0}}},                 // empty phase
		{KeyDomain: 10, Skew: 1, Phases: []Phase{{Events: 5, HotShare: 1.5}}},  // bad share
		{KeyDomain: 10, Skew: 1, Phases: []Phase{{Events: 5, HotShare: -0.1}}}, // bad share
	}
	for i, cfg := range bad {
		if _, err := NewPhasedGenerator(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestPhasedGeneratorShape(t *testing.T) {
	cfg := PhasedConfig{
		KeyDomain: 1000,
		Skew:      1.0,
		TickStep:  2,
		Sites:     3,
		Seed:      5,
		Phases: []Phase{
			{Events: 1000},
			{Events: 1000, HotKey: 999, HotShare: 0.5},
			{Events: 500, Gap: 100000},
		},
	}
	g, err := NewPhasedGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := g.Drain()
	if len(events) != 2500 {
		t.Fatalf("got %d events, want 2500", len(events))
	}
	if !SortedByTime(events) {
		t.Fatal("phased stream not time-ordered")
	}
	// Hot key dominates only the middle phase.
	hot := func(from, to int) int {
		n := 0
		for _, ev := range events[from:to] {
			if ev.Key == 999 {
				n++
			}
		}
		return n
	}
	if h := hot(0, 1000); h > 50 {
		t.Errorf("phase 1 has %d hot-key events, want few", h)
	}
	if h := hot(1000, 2000); h < 400 || h > 600 {
		t.Errorf("phase 2 has %d hot-key events, want ≈500", h)
	}
	// The gap separates phase 3 from phase 2 by ≥ 100000 ticks.
	if gap := events[2000].Time - events[1999].Time; gap < 100000 {
		t.Errorf("phase gap = %d ticks, want ≥ 100000", gap)
	}
	// Sites round-robin across all configured sites.
	seen := map[int]bool{}
	for _, ev := range events {
		seen[ev.Site] = true
	}
	if len(seen) != 3 {
		t.Errorf("sites used: %d, want 3", len(seen))
	}
	bounds := PhaseBoundaries(events, cfg)
	if len(bounds) != 3 || bounds[0] >= bounds[1] || bounds[1] >= bounds[2] {
		t.Errorf("phase boundaries %v malformed", bounds)
	}
}

func TestPhasedGeneratorReproducible(t *testing.T) {
	cfg := PhasedConfig{
		KeyDomain: 100, Skew: 1.1, Seed: 9,
		Phases: []Phase{{Events: 300, HotKey: 5, HotShare: 0.2}},
	}
	mk := func() []Event {
		g, err := NewPhasedGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g.Drain()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

// TestPhasedStreamThroughSketch is an integration check: the attack phase
// makes the hot key a heavy hitter, the gap phase expires it.
func TestPhasedStreamThroughSketch(t *testing.T) {
	cfg := PhasedConfig{
		KeyDomain: 512, Skew: 0.9, TickStep: 1, Seed: 3,
		Phases: []Phase{
			{Events: 2000},
			{Events: 2000, HotKey: 7, HotShare: 0.4},
			{Events: 2000, Gap: 50000},
		},
	}
	g, err := NewPhasedGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := g.Drain()
	oracle := NewOracle(10000)
	for _, ev := range events[:4000] {
		oracle.AddEvent(ev)
	}
	if hh := oracle.HeavyHitters(0.2, 10000); len(hh) == 0 || hh[0].Key != 7 {
		t.Errorf("attack phase: heavy hitters = %v, want key 7 on top", hh)
	}
	for _, ev := range events[4000:] {
		oracle.AddEvent(ev)
	}
	// After the gap, the attack is outside the window.
	if f := oracle.Freq(7, 10000); f > 50 {
		t.Errorf("hot key still has %d windowed arrivals after the gap", f)
	}
}
