package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ecmsketch/internal/hashing"
)

// ReadTrace parses a CSV event stream of the form emitted by cmd/ecmgen:
//
//	key,tick[,site]
//
// one event per line; blank lines and lines starting with '#' are skipped.
// Keys are arbitrary strings, digested to the sketches' uint64 key space
// (numeric keys are digested the same way, so "42" and the integer 42 do
// NOT collide by construction — use the same representation when querying).
// Ticks must parse as unsigned integers; sites default to 0.
func ReadTrace(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseTraceLine(line)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	return out, nil
}

func parseTraceLine(line string) (Event, error) {
	parts := strings.Split(line, ",")
	if len(parts) < 2 || len(parts) > 3 {
		return Event{}, fmt.Errorf("want key,tick[,site], got %q", line)
	}
	key := strings.TrimSpace(parts[0])
	if key == "" {
		return Event{}, fmt.Errorf("empty key in %q", line)
	}
	tick, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("bad tick in %q: %v", line, err)
	}
	ev := Event{Key: hashing.KeyString(key), Time: tick}
	if len(parts) == 3 {
		site, err := strconv.Atoi(strings.TrimSpace(parts[2]))
		if err != nil || site < 0 {
			return Event{}, fmt.Errorf("bad site in %q", line)
		}
		ev.Site = site
	}
	return ev, nil
}

// WriteTrace renders events in the same CSV format (key rendered as the raw
// digest in decimal — round-trips through ReadTrace are NOT identity on the
// key, since ReadTrace digests; WriteTrace exists for checkpointing
// generated streams).
func WriteTrace(w io.Writer, events []Event, withSite bool) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, ev := range events {
		var err error
		if withSite {
			_, err = fmt.Fprintf(bw, "%d,%d,%d\n", ev.Key, ev.Time, ev.Site)
		} else {
			_, err = fmt.Fprintf(bw, "%d,%d\n", ev.Key, ev.Time)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SortedByTime reports whether the trace's ticks are non-decreasing — the
// ingestion requirement of the sketches. Callers with disordered traces
// should route them through ecmsketch.Reorderer.
func SortedByTime(events []Event) bool {
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			return false
		}
	}
	return true
}
