// Package workload generates the synthetic input streams of the
// experimental evaluation and provides the exact sliding-window oracle the
// observed errors are measured against.
//
// The paper evaluates on two real traces that cannot be redistributed: the
// 1998 World Cup HTTP logs (1.089 B requests, 92 days, 33 server mirrors,
// keyed by page URL) and the CRAWDAD Dartmouth SNMP trace (134 M records,
// 535 access points, keyed by client MAC). The generators here reproduce the
// properties those traces contribute to the evaluation — frequency skew,
// arrival density inside the window, site count and per-site load imbalance,
// diurnal arrival-rate modulation — at laptop scale. See DESIGN.md §2 for
// the substitution argument.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ecmsketch/internal/window"
)

// Tick re-exports the logical timestamp type.
type Tick = window.Tick

// Event is one stream arrival: an item key observed at a site at a time.
type Event struct {
	Key  uint64
	Time Tick
	Site int
}

// Zipf samples ranks 1..N with probability proportional to 1/rank^s. Unlike
// math/rand's Zipf it accepts any s > 0 (the measured skews of web-page and
// per-client traffic popularity are often below 1, which rand.Zipf cannot
// express). Sampling is inverse-CDF over a precomputed prefix table.
type Zipf struct {
	cum []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(rng *rand.Rand, s float64, n int) (*Zipf, error) {
	if n <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("workload: Zipf domain must be in [1, 2^24], got %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: Zipf exponent must be positive, got %v", s)
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &Zipf{cum: cum, rng: rng}, nil
}

// Sample draws a rank in [0, n).
func (z *Zipf) Sample() uint64 {
	u := z.rng.Float64() * z.cum[len(z.cum)-1]
	return uint64(sort.SearchFloat64s(z.cum, u))
}

// Config parameterizes a synthetic stream.
type Config struct {
	// Events is the stream length.
	Events int
	// Duration is the tick span of the whole stream; event times are spread
	// over [1, Duration].
	Duration Tick
	// KeyDomain is the number of distinct keys; keys are Zipf ranks in
	// [0, KeyDomain).
	KeyDomain int
	// Skew is the Zipf exponent of key popularity.
	Skew float64
	// Sites is the number of observing sites events are distributed over.
	Sites int
	// SiteSkew is the Zipf exponent of the per-site load split; 0 means
	// uniform.
	SiteSkew float64
	// Diurnal modulates the arrival rate sinusoidally with DiurnalPeriod
	// ticks per cycle, mimicking the day/night pattern of the real traces.
	Diurnal       bool
	DiurnalPeriod Tick
	// Seed makes the stream reproducible.
	Seed int64
}

func (c *Config) validate() error {
	if c.Events <= 0 {
		return fmt.Errorf("workload: Events must be positive, got %d", c.Events)
	}
	if c.Duration == 0 {
		return fmt.Errorf("workload: Duration must be positive")
	}
	if c.KeyDomain <= 0 {
		return fmt.Errorf("workload: KeyDomain must be positive, got %d", c.KeyDomain)
	}
	if c.Skew <= 0 {
		return fmt.Errorf("workload: Skew must be positive, got %v", c.Skew)
	}
	if c.Sites <= 0 {
		return fmt.Errorf("workload: Sites must be positive, got %d", c.Sites)
	}
	if c.Diurnal && c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = c.Duration / 4
		if c.DiurnalPeriod == 0 {
			c.DiurnalPeriod = 1
		}
	}
	return nil
}

// Generator produces a reproducible synthetic event stream.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	keys     *Zipf
	siteCum  []float64
	produced int
	clock    float64
	step     float64
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	keys, err := NewZipf(rng, cfg.Skew, cfg.KeyDomain)
	if err != nil {
		return nil, err
	}
	g := &Generator{
		cfg:  cfg,
		rng:  rng,
		keys: keys,
		step: float64(cfg.Duration) / float64(cfg.Events),
	}
	// Per-site load split: uniform or Zipf-weighted, shuffled so the heavy
	// site is not always site 0.
	weights := make([]float64, cfg.Sites)
	for i := range weights {
		if cfg.SiteSkew > 0 {
			weights[i] = 1 / math.Pow(float64(i+1), cfg.SiteSkew)
		} else {
			weights[i] = 1
		}
	}
	rng.Shuffle(len(weights), func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	g.siteCum = make([]float64, cfg.Sites)
	var total float64
	for i, w := range weights {
		total += w
		g.siteCum[i] = total
	}
	return g, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// Remaining reports how many events are still to be produced.
func (g *Generator) Remaining() int { return g.cfg.Events - g.produced }

// Next produces the next event; ok is false once the stream is exhausted.
// Event times are non-decreasing.
func (g *Generator) Next() (ev Event, ok bool) {
	if g.produced >= g.cfg.Events {
		return Event{}, false
	}
	g.produced++
	step := g.step
	if g.cfg.Diurnal {
		// Modulate the inter-arrival gap: busy phases compress time between
		// events, quiet phases stretch it; the mean rate is preserved.
		phase := 2 * math.Pi * g.clock / float64(g.cfg.DiurnalPeriod)
		step *= 1 + 0.8*math.Sin(phase)
		if step < 0 {
			step = 0
		}
	}
	g.clock += step
	t := Tick(g.clock)
	if t == 0 {
		t = 1
	}
	u := g.rng.Float64() * g.siteCum[len(g.siteCum)-1]
	site := sort.SearchFloat64s(g.siteCum, u)
	return Event{Key: g.keys.Sample(), Time: t, Site: site}, true
}

// Drain produces the whole remaining stream at once.
func (g *Generator) Drain() []Event {
	out := make([]Event, 0, g.Remaining())
	for {
		ev, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// WorldCup98Like mirrors the wc'98 trace shape: 33 server mirrors with a
// heavy-tailed load split, page popularity skew ≈0.85, diurnal arrival
// modulation, and event times measured in (scaled) seconds. The paper
// monitors a 10⁶-second window over this trace.
func WorldCup98Like(events int, duration Tick, seed int64) (*Generator, error) {
	return NewGenerator(Config{
		Events:    events,
		Duration:  duration,
		KeyDomain: 1 << 15,
		Skew:      0.85,
		Sites:     33,
		SiteSkew:  0.6,
		Diurnal:   true,
		Seed:      seed,
	})
}

// SNMPLike mirrors the CRAWDAD Dartmouth SNMP trace shape: 535 access
// points, per-client traffic skew ≈1.1 over a MAC-address domain, burstier
// site imbalance than wc'98.
func SNMPLike(events int, duration Tick, seed int64) (*Generator, error) {
	return NewGenerator(Config{
		Events:    events,
		Duration:  duration,
		KeyDomain: 1 << 14,
		Skew:      1.1,
		Sites:     535,
		SiteSkew:  0.9,
		Diurnal:   true,
		Seed:      seed,
	})
}
