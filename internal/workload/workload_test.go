package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(rng, 1.0, 0); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewZipf(rng, 0, 10); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, err := NewZipf(rng, -1, 10); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestZipfSkewBelowOne(t *testing.T) {
	// The whole reason for a custom sampler: s = 0.85 must work.
	rng := rand.New(rand.NewSource(2))
	z, err := NewZipf(rng, 0.85, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 must dominate and the ratio to rank 9 should be ≈ 10^0.85 ≈ 7.
	if counts[0] <= counts[9] {
		t.Errorf("rank 0 (%d) not more frequent than rank 9 (%d)", counts[0], counts[9])
	}
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 3 || ratio > 15 {
		t.Errorf("rank0/rank9 ratio = %.1f, want ≈ 7", ratio)
	}
}

func TestZipfInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z, err := NewZipf(rng, 1.2, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if s := z.Sample(); s >= 50 {
			t.Fatalf("sample %d out of range", s)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []Config{
		{},
		{Events: 10, Duration: 100, KeyDomain: 10, Skew: 1},          // no sites
		{Events: 10, Duration: 100, KeyDomain: 10, Sites: 1},         // no skew
		{Events: 10, Duration: 100, Skew: 1, Sites: 1},               // no domain
		{Events: 10, KeyDomain: 10, Skew: 1, Sites: 1},               // no duration
		{Events: 0, Duration: 100, KeyDomain: 10, Skew: 1, Sites: 1}, // no events
	}
	for _, c := range bad {
		if _, err := NewGenerator(c); err == nil {
			t.Errorf("NewGenerator(%+v) succeeded, want error", c)
		}
	}
}

func TestGeneratorReproducible(t *testing.T) {
	mk := func() []Event {
		g, err := WorldCup98Like(1000, 10000, 7)
		if err != nil {
			t.Fatal(err)
		}
		return g.Drain()
	}
	a, b := mk(), mk()
	if len(a) != len(b) || len(a) != 1000 {
		t.Fatalf("stream lengths %d vs %d, want 1000", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorTimesMonotone(t *testing.T) {
	g, err := SNMPLike(5000, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var prev Tick
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if ev.Time < prev {
			t.Fatalf("time regressed: %d after %d", ev.Time, prev)
		}
		if ev.Time == 0 {
			t.Fatal("zero timestamp produced")
		}
		prev = ev.Time
	}
	if prev > 50000+1 {
		t.Errorf("final time %d exceeds duration", prev)
	}
}

func TestGeneratorSiteProperties(t *testing.T) {
	g, err := WorldCup98Like(20000, 100000, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 33)
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if ev.Site < 0 || ev.Site >= 33 {
			t.Fatalf("site %d out of range", ev.Site)
		}
		counts[ev.Site]++
	}
	nonEmpty := 0
	max, min := 0, 1<<60
	for _, c := range counts {
		if c > 0 {
			nonEmpty++
		}
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if nonEmpty < 30 {
		t.Errorf("only %d/33 sites received events", nonEmpty)
	}
	// SiteSkew produces a meaningful imbalance.
	if max < 2*min {
		t.Errorf("site load max=%d min=%d; expected skewed split", max, min)
	}
}

func TestGeneratorKeySkew(t *testing.T) {
	g, err := NewGenerator(Config{
		Events: 50000, Duration: 100000, KeyDomain: 1 << 12,
		Skew: 1.1, Sites: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		counts[ev.Key]++
	}
	// Top key should take a disproportionate share under skew 1.1.
	if counts[0] < 50000/100 {
		t.Errorf("top key has %d of 50000 events; skew too weak", counts[0])
	}
}

func TestGeneratorDiurnalChangesSpacing(t *testing.T) {
	flat, err := NewGenerator(Config{Events: 10000, Duration: 100000, KeyDomain: 100, Skew: 1, Sites: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	wavy, err := NewGenerator(Config{Events: 10000, Duration: 100000, KeyDomain: 100, Skew: 1, Sites: 1, Seed: 4, Diurnal: true, DiurnalPeriod: 20000})
	if err != nil {
		t.Fatal(err)
	}
	gapVariance := func(g *Generator) float64 {
		var gaps []float64
		var prev Tick
		for {
			ev, ok := g.Next()
			if !ok {
				break
			}
			gaps = append(gaps, float64(ev.Time-prev))
			prev = ev.Time
		}
		var mean, v float64
		for _, g := range gaps {
			mean += g
		}
		mean /= float64(len(gaps))
		for _, g := range gaps {
			v += (g - mean) * (g - mean)
		}
		return v / float64(len(gaps))
	}
	if vf, vw := gapVariance(flat), gapVariance(wavy); vw <= vf {
		t.Errorf("diurnal gap variance %v not larger than flat %v", vw, vf)
	}
}

func TestOracleBasics(t *testing.T) {
	o := NewOracle(100)
	o.Add(1, 10)
	o.Add(1, 20)
	o.Add(2, 30)
	if got := o.Freq(1, 100); got != 2 {
		t.Errorf("Freq(1) = %d, want 2", got)
	}
	if got := o.Total(100); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
	if got := o.SelfJoin(100); got != 5 { // 2² + 1²
		t.Errorf("SelfJoin = %v, want 5", got)
	}
	if got := o.Freq(99, 100); got != 0 {
		t.Errorf("Freq(unknown) = %d, want 0", got)
	}
	o.Advance(200)
	if got := o.Total(100); got != 0 {
		t.Errorf("Total after expiry = %d, want 0", got)
	}
}

func TestOracleInnerProduct(t *testing.T) {
	a, b := NewOracle(100), NewOracle(100)
	a.Add(1, 10)
	a.Add(1, 11)
	a.Add(2, 12)
	b.Add(1, 10)
	b.Add(3, 11)
	b.Advance(12)
	if got := a.InnerProduct(b, 100); got != 2 { // f_a(1)·f_b(1) = 2·1
		t.Errorf("InnerProduct = %v, want 2", got)
	}
}

func TestOracleHeavyHitters(t *testing.T) {
	o := NewOracle(1000)
	var now Tick
	for i := 0; i < 60; i++ {
		now++
		o.Add(7, now)
	}
	for i := 0; i < 40; i++ {
		now++
		o.Add(uint64(100+i), now)
	}
	hh := o.HeavyHitters(0.5, 1000)
	if len(hh) != 1 || hh[0].Key != 7 {
		t.Errorf("HeavyHitters(0.5) = %v, want only key 7", hh)
	}
	if o.DistinctKeys(1000) != 41 {
		t.Errorf("DistinctKeys = %d, want 41", o.DistinctKeys(1000))
	}
	if len(o.Keys()) != 41 {
		t.Errorf("Keys() has %d entries, want 41", len(o.Keys()))
	}
}

func TestOracleWindowSemantics(t *testing.T) {
	o := NewOracle(50)
	o.Add(1, 10)
	o.Add(1, 40)
	o.Add(1, 70)
	// Window (20, 70]: arrivals at 40 and 70.
	if got := o.Freq(1, 50); got != 2 {
		t.Errorf("Freq in window = %d, want 2", got)
	}
	// Sub-range (60, 70]: just the arrival at 70.
	if got := o.Freq(1, 10); got != 1 {
		t.Errorf("Freq in sub-range = %d, want 1", got)
	}
	if math.Abs(o.SelfJoin(50)-4) > 1e-9 {
		t.Errorf("SelfJoin = %v, want 4", o.SelfJoin(50))
	}
}
