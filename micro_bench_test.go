package ecmsketch_test

import (
	"sync/atomic"
	"testing"

	"ecmsketch"
)

// Micro-benchmarks for the library components outside the paper's
// tables/figures: ingestion paths, serialization, and the derived trackers.

func BenchmarkSketchAdd(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
}

func BenchmarkSketchEstimate(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<17; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk.Estimate(uint64(i%4096), 1<<16)
	}
}

func BenchmarkSketchMarshal(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<17; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
	enc := sk.Marshal()
	b.ReportMetric(float64(len(enc)), "encoded-bytes")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if enc = sk.Marshal(); len(enc) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkSketchUnmarshal(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<17; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
	enc := sk.Marshal()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ecmsketch.Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowedSumAdd(b *testing.B) {
	ws, err := ecmsketch.NewWindowedSum(ecmsketch.SumConfig{
		WindowLength: 1 << 20, Epsilon: 0.05, MaxValue: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ws.Add(ecmsketch.Tick(i+1), uint64(i%1500)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReordererOffer(b *testing.B) {
	sink := func(uint64, ecmsketch.Tick, uint64) {}
	r, err := ecmsketch.NewReorderer(64, sink)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Alternate between in-order and slightly regressed ticks.
		t := ecmsketch.Tick(i + 1)
		if i%3 == 0 && t > 10 {
			t -= 10
		}
		r.Offer(uint64(i%256), t, 1)
	}
	r.Flush()
}

func BenchmarkTopKOffer(b *testing.B) {
	tk, err := ecmsketch.NewTopK(10, ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Offer(uint64(i%4096), ecmsketch.Tick(i+1))
	}
}

func BenchmarkSafeSketchAddParallel(b *testing.B) {
	ss, err := ecmsketch.NewSafe(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var tick atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			ss.Add(i%1024, tick.Add(1))
		}
	})
}
