package ecmsketch_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"ecmsketch"
)

// Micro-benchmarks for the library components outside the paper's
// tables/figures: ingestion paths, serialization, and the derived trackers.

func BenchmarkSketchAdd(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
}

// BenchmarkSketchAddBatch measures the single-sketch batch ingest hot path
// at the acceptance operating point (EH, ε=0.05): ns/op, B/op and allocs/op
// are all per event, the numbers recorded in BENCH_ingest.json.
func BenchmarkSketchAddBatch(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
			if err != nil {
				b.Fatal(err)
			}
			batch := make([]ecmsketch.Event, 0, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch = append(batch, ecmsketch.Event{Key: uint64(i % 4096), Tick: ecmsketch.Tick(i + 1)})
				if len(batch) == cap(batch) {
					sk.AddBatch(batch)
					batch = batch[:0]
				}
			}
			sk.AddBatch(batch)
		})
	}
}

func BenchmarkSketchEstimate(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<17; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sk.Estimate(uint64(i%4096), 1<<16)
	}
}

func BenchmarkSketchMarshal(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<17; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
	enc := sk.Marshal()
	b.ReportMetric(float64(len(enc)), "encoded-bytes")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if enc = sk.Marshal(); len(enc) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkSketchUnmarshal(b *testing.B) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1<<17; i++ {
		sk.Add(uint64(i%4096), ecmsketch.Tick(i+1))
	}
	enc := sk.Marshal()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ecmsketch.Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWindowedSumAdd(b *testing.B) {
	ws, err := ecmsketch.NewWindowedSum(ecmsketch.SumConfig{
		WindowLength: 1 << 20, Epsilon: 0.05, MaxValue: 1 << 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ws.Add(ecmsketch.Tick(i+1), uint64(i%1500)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReordererOffer(b *testing.B) {
	sink := func(uint64, ecmsketch.Tick, uint64) {}
	r, err := ecmsketch.NewReorderer(64, sink)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Alternate between in-order and slightly regressed ticks.
		t := ecmsketch.Tick(i + 1)
		if i%3 == 0 && t > 10 {
			t -= 10
		}
		r.Offer(uint64(i%256), t, 1)
	}
	r.Flush()
}

func BenchmarkTopKOffer(b *testing.B) {
	tk, err := ecmsketch.NewTopK(10, ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Offer(uint64(i%4096), ecmsketch.Tick(i+1))
	}
}

// benchConcurrentIngest measures wall-clock ingest throughput of an
// Ingestor under a fixed number of writer goroutines, each feeding
// single-event AddN calls (the worst case for lock traffic — batching is
// benchmarked separately). The b.N budget is split across the goroutines.
func benchConcurrentIngest(b *testing.B, ing ecmsketch.Ingestor, goroutines int, batchSize int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/goroutines + 1
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) << 32
			if batchSize <= 1 {
				for i := 0; i < per; i++ {
					ing.AddN(base|uint64(i%4096), ecmsketch.Tick(i+1), 1)
				}
				return
			}
			batch := make([]ecmsketch.Event, 0, batchSize)
			for i := 0; i < per; i++ {
				batch = append(batch, ecmsketch.Event{Key: base | uint64(i%4096), Tick: ecmsketch.Tick(i + 1)})
				if len(batch) == cap(batch) {
					ing.AddBatch(batch)
					batch = batch[:0]
				}
			}
			ing.AddBatch(batch)
		}(g)
	}
	wg.Wait()
}

// BenchmarkIngestSafeVsSharded compares the single-mutex SafeSketch against
// the lock-striped Sharded engine at 1, 4 and 16 writer goroutines — the
// scaling argument behind the sharded engine (compare ns/op across the
// /safe/ and /sharded/ variants at equal goroutine counts).
func BenchmarkIngestSafeVsSharded(b *testing.B) {
	params := ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20}
	for _, bench := range []struct {
		name string
		mk   func(b *testing.B) ecmsketch.Ingestor
	}{
		{"safe", func(b *testing.B) ecmsketch.Ingestor {
			ss, err := ecmsketch.NewSafe(params)
			if err != nil {
				b.Fatal(err)
			}
			return ss
		}},
		{"sharded", func(b *testing.B) ecmsketch.Ingestor {
			sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: params, Shards: 16})
			if err != nil {
				b.Fatal(err)
			}
			return sh
		}},
	} {
		for _, goroutines := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", bench.name, goroutines), func(b *testing.B) {
				benchConcurrentIngest(b, bench.mk(b), goroutines, 1)
			})
			b.Run(fmt.Sprintf("%s-batch64/goroutines=%d", bench.name, goroutines), func(b *testing.B) {
				benchConcurrentIngest(b, bench.mk(b), goroutines, 64)
			})
		}
	}
}

// BenchmarkQueryBatchVsSingles compares one QueryBatch of 16 keys plus both
// aggregates against the equivalent sequence of 18 single queries, on a
// quiesced Sharded engine (cache-hit reads — the contended-read trajectory
// lives in BENCH_query.json via cmd/ecmbench -query).
func BenchmarkQueryBatchVsSingles(b *testing.B) {
	params := ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20}
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: params, Shards: 16})
	if err != nil {
		b.Fatal(err)
	}
	events := make([]ecmsketch.Event, 1<<16)
	for i := range events {
		events[i] = ecmsketch.Event{Key: uint64(i % 4096), Tick: ecmsketch.Tick(i + 1)}
	}
	sh.AddBatch(events)
	keys := make([]uint64, 16)
	for i := range keys {
		keys[i] = uint64(i * 17)
	}
	r := params.WindowLength / 2
	b.Run("batch16+aggregates", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sh.QueryBatch(ecmsketch.QueryBatch{Keys: keys, Range: r, Total: true, SelfJoin: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("singles16+aggregates", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				sh.Estimate(k, r)
			}
			sh.EstimateTotal(r)
			sh.SelfJoin(r)
		}
	})
}

func BenchmarkSafeSketchAddParallel(b *testing.B) {
	ss, err := ecmsketch.NewSafe(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	var tick atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			ss.Add(i%1024, tick.Add(1))
		}
	})
}
