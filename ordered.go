package ecmsketch

import (
	"container/heap"
	"fmt"
)

// Reorderer absorbs bounded out-of-order arrivals before they reach a
// sketch. ECM-sketches require non-decreasing ticks (slightly regressed
// ticks are clamped forward, which biases estimates); real collection
// pipelines — NetFlow exporters, multi-threaded collectors — deliver events
// with bounded disorder instead. The Reorderer buffers events in a min-heap
// and releases an event only once the newest tick seen proves that nothing
// older than it can still arrive, so events within the slack re-emerge in
// tick order.
//
// The paper's Section 2 surveys synopses that tolerate out-of-order arrivals
// natively at a higher space cost (randomized waves and variants); a bounded
// reorder buffer in front of the deterministic ECM-sketch is the practical
// alternative this library ships.
type Reorderer struct {
	sink    func(key uint64, t Tick, n uint64)
	slack   Tick
	heap    eventHeap
	max     Tick
	late    uint64
	emitted uint64
	seq     uint64
}

type pendingEvent struct {
	key uint64
	t   Tick
	n   uint64
	seq uint64 // arrival order, to keep same-tick events stable
}

type eventHeap struct {
	items []pendingEvent
}

func (h *eventHeap) Len() int { return len(h.items) }
func (h *eventHeap) Less(i, j int) bool {
	if h.items[i].t != h.items[j].t {
		return h.items[i].t < h.items[j].t
	}
	return h.items[i].seq < h.items[j].seq
}
func (h *eventHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *eventHeap) Push(x any)    { h.items = append(h.items, x.(pendingEvent)) }
func (h *eventHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// NewReorderer wraps a sink (usually Sketch.AddN) with a reorder buffer of
// the given slack. Events arriving more than slack ticks behind the newest
// seen tick are late beyond repair and are forwarded immediately (to be
// clamped by the sketch); Stats counts them.
func NewReorderer(slack Tick, sink func(key uint64, t Tick, n uint64)) (*Reorderer, error) {
	if sink == nil {
		return nil, fmt.Errorf("ecmsketch: Reorderer needs a sink")
	}
	return &Reorderer{sink: sink, slack: slack}, nil
}

// Offer submits one possibly out-of-order arrival.
func (r *Reorderer) Offer(key uint64, t Tick, n uint64) {
	r.seq++
	if t+r.slack < r.max {
		// Too old to ever be reordered correctly: hand through.
		r.late++
		r.emitted++
		r.sink(key, t, n)
		return
	}
	if t > r.max {
		r.max = t
	}
	heap.Push(&r.heap, pendingEvent{key: key, t: t, n: n, seq: r.seq})
	r.release()
}

// release drains every buffered event whose position is provably final:
// at least slack older than the newest tick seen.
func (r *Reorderer) release() {
	for r.heap.Len() > 0 {
		top := r.heap.items[0]
		if top.t+r.slack > r.max {
			return
		}
		heap.Pop(&r.heap)
		r.emitted++
		r.sink(top.key, top.t, top.n)
	}
}

// Flush drains everything regardless of slack; call at stream end or on a
// watermark.
func (r *Reorderer) Flush() {
	for r.heap.Len() > 0 {
		it := heap.Pop(&r.heap).(pendingEvent)
		r.emitted++
		r.sink(it.key, it.t, it.n)
	}
}

// ReorderStats reports buffer occupancy and late counts.
type ReorderStats struct {
	Buffered int    // events currently held
	Late     uint64 // events beyond the slack, forwarded unordered
	Emitted  uint64 // events delivered to the sink
}

// Stats reports the current accounting.
func (r *Reorderer) Stats() ReorderStats {
	return ReorderStats{Buffered: r.heap.Len(), Late: r.late, Emitted: r.emitted}
}
