package ecmsketch_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ecmsketch"
)

// jitterOrder returns ticks 1..n in an arrival order where each event is
// displaced by strictly less than `disorder` ticks: event t is emitted at
// jittered position t + U[0,disorder).
func jitterOrder(n int, disorder float64, seed int64) []ecmsketch.Tick {
	rng := rand.New(rand.NewSource(seed))
	type slot struct {
		t   ecmsketch.Tick
		pos float64
	}
	slots := make([]slot, n)
	for i := range slots {
		slots[i] = slot{t: ecmsketch.Tick(i + 1), pos: float64(i) + rng.Float64()*disorder}
	}
	sort.Slice(slots, func(a, b int) bool { return slots[a].pos < slots[b].pos })
	out := make([]ecmsketch.Tick, n)
	for i, s := range slots {
		out[i] = s.t
	}
	return out
}

func TestReordererDeliversInOrder(t *testing.T) {
	var got []ecmsketch.Tick
	r, err := ecmsketch.NewReorderer(10, func(_ uint64, tk ecmsketch.Tick, _ uint64) {
		got = append(got, tk)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Disorder bounded strictly below the slack: event with tick t is
	// offered at jittered position t + U[0,8).
	for _, tk := range jitterOrder(500, 8, 5) {
		r.Offer(1, tk, 1)
	}
	r.Flush()
	if len(got) != 500 {
		t.Fatalf("delivered %d events, want 500", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out-of-order delivery at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if st := r.Stats(); st.Late != 0 || st.Emitted != 500 || st.Buffered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReordererLateEvents(t *testing.T) {
	var ticks []ecmsketch.Tick
	r, err := ecmsketch.NewReorderer(5, func(_ uint64, tk ecmsketch.Tick, _ uint64) {
		ticks = append(ticks, tk)
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Offer(1, 100, 1)
	r.Offer(1, 50, 1) // 50+5 < 100: late beyond slack, passed through
	if st := r.Stats(); st.Late != 1 {
		t.Errorf("late = %d, want 1", st.Late)
	}
	r.Flush()
	if len(ticks) != 2 {
		t.Fatalf("delivered %d", len(ticks))
	}
}

func TestReordererNilSink(t *testing.T) {
	if _, err := ecmsketch.NewReorderer(5, nil); err == nil {
		t.Error("nil sink accepted")
	}
}

func TestReordererStableSameTick(t *testing.T) {
	type rec struct {
		key uint64
		n   uint64
	}
	var got []rec
	r, _ := ecmsketch.NewReorderer(3, func(k uint64, _ ecmsketch.Tick, n uint64) {
		got = append(got, rec{k, n})
	})
	r.Offer(1, 10, 1)
	r.Offer(2, 10, 2)
	r.Offer(3, 10, 3)
	r.Flush()
	for i, want := range []rec{{1, 1}, {2, 2}, {3, 3}} {
		if got[i] != want {
			t.Fatalf("same-tick order not stable: got %v", got)
		}
	}
}

func TestReordererFrontOfSketch(t *testing.T) {
	// End-to-end: disordered stream through the reorderer into a sketch
	// matches a sorted stream into a second sketch exactly.
	p := ecmsketch.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 1000, Seed: 8}
	viaReorder, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := ecmsketch.NewReorderer(16, viaReorder.AddN)
	for _, tk := range jitterOrder(600, 10, 2) {
		r.Offer(uint64(tk%7), tk, 1)
	}
	r.Flush()
	for i := 1; i <= 600; i++ {
		sorted.Add(uint64(i%7), ecmsketch.Tick(i))
	}
	for k := uint64(0); k < 7; k++ {
		if a, b := viaReorder.Estimate(k, 1000), sorted.Estimate(k, 1000); a != b {
			t.Errorf("key %d: reordered=%v sorted=%v", k, a, b)
		}
	}
}

func TestSafeSketchConcurrent(t *testing.T) {
	ss, err := ecmsketch.NewSafe(ecmsketch.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100000})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 500; i++ {
				ss.Add(uint64(g), ecmsketch.Tick(i))
				if i%50 == 0 {
					ss.Estimate(uint64(g), 100000)
					ss.SelfJoin(1000)
					ss.EstimateTotal(1000)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := ss.Count(); got != 4000 {
		t.Errorf("Count = %d, want 4000", got)
	}
	snap, err := ss.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for g := uint64(0); g < 8; g++ {
		if e := snap.Estimate(g, 100000); e < 400 {
			t.Errorf("snapshot estimate for %d = %v, want ≈500", g, e)
		}
	}
	if ss.MemoryBytes() <= 0 || ss.Now() == 0 {
		t.Error("degenerate SafeSketch state")
	}
}

func TestSafeSketchWrapAndStrings(t *testing.T) {
	inner, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 100})
	if err != nil {
		t.Fatal(err)
	}
	ss := ecmsketch.WrapSafe(inner)
	ss.AddString("a", 1)
	ss.AddN(ecmsketch.KeyString("a"), 2, 4)
	ss.Advance(3)
	if got := ss.EstimateString("a", 100); got < 5 {
		t.Errorf("EstimateString = %v, want ≥5", got)
	}
	if len(ss.Marshal()) == 0 {
		t.Error("empty marshal")
	}
}
