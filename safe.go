package ecmsketch

import "sync"

// SafeSketch is a mutex-guarded wrapper making one ECM-sketch usable from
// multiple goroutines — e.g. an HTTP collector with concurrent handlers.
// Single-goroutine pipelines should use Sketch directly; the lock costs
// roughly a cache-line bounce per operation.
//
// All query methods take the same lock as updates because sliding-window
// counters expire lazily: reads advance the window clock.
type SafeSketch struct {
	mu sync.Mutex
	s  *Sketch
}

// NewSafe constructs a concurrency-safe ECM-sketch.
func NewSafe(p Params) (*SafeSketch, error) {
	s, err := New(p)
	if err != nil {
		return nil, err
	}
	return &SafeSketch{s: s}, nil
}

// WrapSafe guards an existing sketch. The caller must stop using the inner
// sketch directly.
func WrapSafe(s *Sketch) *SafeSketch { return &SafeSketch{s: s} }

// Add registers one arrival of key at tick t.
func (ss *SafeSketch) Add(key uint64, t Tick) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.s.Add(key, t)
}

// AddN registers n arrivals of key at tick t.
func (ss *SafeSketch) AddN(key uint64, t Tick, n uint64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.s.AddN(key, t, n)
}

// AddString registers one arrival of a string-keyed item.
func (ss *SafeSketch) AddString(key string, t Tick) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.s.AddString(key, t)
}

// AddBatch registers a slice of arrivals under one lock acquisition,
// amortizing the cache-line bounce across the whole batch.
func (ss *SafeSketch) AddBatch(events []Event) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.s.AddBatch(events)
}

// Advance moves the window clock forward.
func (ss *SafeSketch) Advance(t Tick) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.s.Advance(t)
}

// Estimate answers a point query over the last r ticks.
func (ss *SafeSketch) Estimate(key uint64, r Tick) float64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.Estimate(key, r)
}

// EstimateString answers a point query for a string key.
func (ss *SafeSketch) EstimateString(key string, r Tick) float64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.EstimateString(key, r)
}

// InnerProduct estimates the inner product against another sketch's stream
// over the last r ticks. The caller is responsible for the other sketch's
// concurrency safety (pass a Snapshot of another concurrent front end).
func (ss *SafeSketch) InnerProduct(other *Sketch, r Tick) (float64, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.InnerProduct(other, r)
}

// SelfJoin estimates F₂ over the last r ticks.
func (ss *SafeSketch) SelfJoin(r Tick) float64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.SelfJoin(r)
}

// EstimateTotal estimates ‖a_r‖₁ over the last r ticks.
func (ss *SafeSketch) EstimateTotal(r Tick) float64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.EstimateTotal(r)
}

// QueryBatch answers a multi-key query from one consistent cut: the whole
// batch — point estimates plus optional aggregates — is evaluated under a
// single lock acquisition, so no writer can interleave between the answers.
func (ss *SafeSketch) QueryBatch(q QueryBatch) (QueryResult, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.QueryBatch(q)
}

// QueryDirect answers the point-only form of QueryBatch. A single sketch
// has no stripes to route to, so the answers coincide with QueryBatch's;
// the method exists so every front end satisfies DirectQuerier with the
// sharded engine's contract (aggregates rejected).
func (ss *SafeSketch) QueryDirect(q QueryBatch) (QueryResult, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.QueryDirect(q)
}

// Marshal serializes the sketch.
func (ss *SafeSketch) Marshal() []byte {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.Marshal()
}

// Snapshot returns an independent copy of the sketch (serialize + decode),
// safe to query or merge without holding the lock.
func (ss *SafeSketch) Snapshot() (*Sketch, error) {
	return Unmarshal(ss.Marshal())
}

// DeltaSnapshot answers a cursor-based incremental pull (see
// DeltaSnapshotter) under the sketch lock.
func (ss *SafeSketch) DeltaSnapshot(since Cursor) ([]byte, Cursor, bool, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.DeltaSnapshot(since)
}

// MemoryBytes reports the sketch footprint.
func (ss *SafeSketch) MemoryBytes() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.MemoryBytes()
}

// Count reports total arrivals since stream start.
func (ss *SafeSketch) Count() uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.Count()
}

// Now reports the latest tick observed.
func (ss *SafeSketch) Now() Tick {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.s.Now()
}
