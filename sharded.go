package ecmsketch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ecmsketch/internal/hashing"
)

// Sharded is a lock-striped ECM-sketch engine for write-heavy concurrent
// workloads. Ingest is partitioned across P per-shard sketches by key hash,
// so concurrent writers contend only when they hit the same stripe — the
// paper's Theorem 4 mergeability applied *inside* one process for
// throughput, not just across distributed sites.
//
// Because routing is by key, every arrival of a key lands in exactly one
// shard: point queries (Estimate, EstimateString) touch a single stripe and
// pay no merge error at all. Global queries (SelfJoin, EstimateTotal,
// InnerProduct, Marshal, Snapshot) merge the shards on demand into a view
// of the combined stream — with the order-preserving ⊕ of Section 5.3 and
// its bounded error inflation — and cache that view for MergeTTL, so
// dashboards polling global statistics do not re-merge on every request.
//
// All methods are safe for concurrent use.
type Sharded struct {
	params Params
	ttl    time.Duration
	mask   uint64
	shards []shard

	// now is the global high-water tick across all shards; queries advance
	// the touched shard to it so expiry is aligned engine-wide.
	now atomic.Uint64

	merged struct {
		sync.Mutex
		view    *Sketch
		version uint64
		builtAt time.Time
	}
}

// shard pads each stripe to its own cache lines so neighboring locks don't
// false-share under heavy concurrent ingest. version counts the stripe's
// mutations — written while holding mu (so the bump is uncontended), read
// lock-free by the merged-view cache check.
type shard struct {
	mu      sync.Mutex
	sk      *Sketch
	version atomic.Uint64
	// Fields above total 24 bytes; pad the stride to two cache lines so no
	// two stripes ever share one.
	_ [128 - 24]byte
}

// ShardedConfig configures a Sharded engine.
type ShardedConfig struct {
	// Params configures every per-shard sketch. All shards share the seed,
	// dimensions and window configuration, so they stay mergeable.
	// Count-based windows are rejected: splitting a count-based window
	// across stripes changes its semantics (each stripe would cover its own
	// last N arrivals, not the stream's).
	Params Params
	// Shards is the stripe count P, rounded up to a power of two; 0 means
	// GOMAXPROCS. More stripes mean less write contention but a costlier
	// merged view for global queries.
	Shards int
	// MergeTTL bounds the staleness of the cached merged view serving
	// global queries. 0 means the cache is only reused while no new
	// arrivals have been ingested — always-fresh answers at the cost of a
	// re-merge after every write burst.
	MergeTTL time.Duration
}

// NewSharded builds a lock-striped engine of identically configured,
// mergeable per-shard sketches.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Params.Model == CountBased {
		return nil, fmt.Errorf("ecmsketch: Sharded requires time-based windows (count-based semantics do not survive key partitioning)")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("ecmsketch: Shards must be non-negative, got %d", cfg.Shards)
	}
	p := cfg.Shards
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	// Round up to a power of two so routing is a mask, not a modulo.
	pow := 1
	for pow < p {
		pow <<= 1
	}
	sh := &Sharded{params: cfg.Params, ttl: cfg.MergeTTL, mask: uint64(pow - 1)}
	sh.shards = make([]shard, pow)
	for i := range sh.shards {
		s, err := New(cfg.Params)
		if err != nil {
			return nil, fmt.Errorf("ecmsketch: shard %d: %w", i, err)
		}
		// Distinct identifier salts keep randomized-wave event identifiers
		// globally unique across stripes (as NewCluster does across sites).
		s.SetIDSalt(0x9e37_79b9_7f4a_7c15 * uint64(i+1))
		sh.shards[i] = shard{sk: s}
	}
	return sh, nil
}

// Shards reports the stripe count P.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Params returns the per-shard sketch configuration.
func (sh *Sharded) Params() Params { return sh.params }

func (sh *Sharded) shardFor(key uint64) *shard {
	return &sh.shards[hashing.Mix64(key)&sh.mask]
}

// observe raises the global high-water tick to t.
func (sh *Sharded) observe(t Tick) {
	for {
		cur := sh.now.Load()
		if t <= cur || sh.now.CompareAndSwap(cur, t) {
			return
		}
	}
}

// Add registers one arrival of key at tick t.
func (sh *Sharded) Add(key uint64, t Tick) { sh.AddN(key, t, 1) }

// AddN registers n arrivals of key at tick t.
func (sh *Sharded) AddN(key uint64, t Tick, n uint64) {
	sh.observe(t)
	s := sh.shardFor(key)
	s.mu.Lock()
	s.sk.AddN(key, t, n)
	s.version.Add(1)
	s.mu.Unlock()
}

// AddString registers one arrival of a string-keyed item.
func (sh *Sharded) AddString(key string, t Tick) { sh.AddN(KeyString(key), t, 1) }

// AddBatch registers a slice of arrivals, grouping them per stripe so each
// shard lock is taken at most once for the whole batch. Events are applied
// in slice order within each stripe, with ticks validated once per batch
// against the engine clock (see Ingestor for the clamping contract), so
// every stripe applies the same non-decreasing tick sequence a single
// sketch would. Grouping threads index chains through pooled scratch
// slices instead of materializing per-stripe buckets, so steady-state
// batch ingest allocates nothing.
func (sh *Sharded) AddBatch(events []Event) {
	// Chain indices are int32; chunk absurdly large batches.
	const maxChunk = 1 << 30
	for len(events) > maxChunk {
		sh.AddBatch(events[:maxChunk])
		events = events[maxChunk:]
	}
	if len(events) == 0 {
		return
	}
	if len(sh.shards) == 1 {
		// The lone stripe's sketch clock tracks the engine clock exactly, so
		// its own batch validation is the engine-level one.
		s := &sh.shards[0]
		s.mu.Lock()
		s.sk.AddBatch(events)
		maxTick := s.sk.Now()
		s.version.Add(1)
		s.mu.Unlock()
		sh.observe(maxTick)
		return
	}
	sc := batchScratchPool.Get().(*shardedBatchScratch)
	defer batchScratchPool.Put(sc)
	sc.resize(len(sh.shards), len(events))
	heads, tails, next, ticks := sc.heads, sc.tails, sc.next, sc.ticks
	for i := range heads {
		heads[i] = -1
	}
	lo := sh.now.Load()
	if lo == 0 {
		lo = 1 // ticks are 1-based
	}
	for i, ev := range events {
		idx := hashing.Mix64(ev.Key) & sh.mask
		if heads[idx] < 0 {
			heads[idx] = int32(i)
		} else {
			next[tails[idx]] = int32(i)
		}
		tails[idx] = int32(i)
		next[i] = -1
		if ev.Tick > lo {
			lo = ev.Tick
		}
		ticks[i] = lo
	}
	sh.observe(lo)
	// Gather each stripe's chain into one scratch sub-batch and hand it to
	// the sketch's own batch pipeline (row-major arena sweep for EH), so
	// striping does not forfeit the devirtualized hot path. The engine-level
	// ticks are already clamped, so the per-sketch validation is a no-op
	// pass over an in-order sequence.
	for si := range sh.shards {
		i := heads[si]
		if i < 0 {
			continue
		}
		sub := sc.sub[:0]
		for ; i >= 0; i = next[i] {
			ev := events[i]
			ev.Tick = ticks[i]
			sub = append(sub, ev)
		}
		s := &sh.shards[si]
		s.mu.Lock()
		s.sk.AddBatch(sub)
		s.version.Add(1)
		s.mu.Unlock()
		sc.sub = sub[:0] // retain any growth for the next stripe
	}
}

// shardedBatchScratch is the pooled working memory of Sharded.AddBatch:
// per-stripe chain heads/tails, per-event links and validated ticks, and
// the sub-batch buffer handed to each stripe's sketch.
type shardedBatchScratch struct {
	heads, tails []int32
	next         []int32
	ticks        []Tick
	sub          []Event
}

var batchScratchPool = sync.Pool{New: func() any { return new(shardedBatchScratch) }}

func (sc *shardedBatchScratch) resize(stripes, events int) {
	if cap(sc.heads) < stripes {
		sc.heads = make([]int32, stripes)
		sc.tails = make([]int32, stripes)
	}
	sc.heads = sc.heads[:stripes]
	sc.tails = sc.tails[:stripes]
	if cap(sc.next) < events {
		sc.next = make([]int32, events)
		sc.ticks = make([]Tick, events)
	}
	sc.next = sc.next[:events]
	sc.ticks = sc.ticks[:events]
	if cap(sc.sub) < events {
		sc.sub = make([]Event, 0, events)
	}
}

// Advance moves the window clock of every stripe forward.
func (sh *Sharded) Advance(t Tick) {
	sh.observe(t)
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		s.sk.Advance(t)
		s.version.Add(1)
		s.mu.Unlock()
	}
}

// Estimate answers a point query over the last r ticks. Key-hash routing
// means the answer comes from the single stripe owning the key, with no
// merge error; the stripe is first advanced to the engine-wide clock so
// expiry matches a single-sketch deployment.
func (sh *Sharded) Estimate(key uint64, r Tick) float64 {
	now := sh.now.Load()
	s := sh.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if now > s.sk.Now() {
		s.sk.Advance(now)
	}
	return s.sk.Estimate(key, r)
}

// EstimateString answers a point query for a string key.
func (sh *Sharded) EstimateString(key string, r Tick) float64 {
	return sh.Estimate(KeyString(key), r)
}

// EstimateInterval answers a point query over the tick interval (from, to],
// again from the single stripe owning the key.
func (sh *Sharded) EstimateInterval(key uint64, from, to Tick) float64 {
	now := sh.now.Load()
	s := sh.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if now > s.sk.Now() {
		s.sk.Advance(now)
	}
	return s.sk.EstimateInterval(key, from, to)
}

// SelfJoin estimates F₂ over the last r ticks from the merged view.
func (sh *Sharded) SelfJoin(r Tick) float64 {
	sh.merged.Lock()
	defer sh.merged.Unlock()
	view, err := sh.mergedViewLocked()
	if err != nil {
		return 0
	}
	return view.SelfJoin(r)
}

// EstimateTotal estimates ‖a_r‖₁ over the last r ticks from the merged view.
func (sh *Sharded) EstimateTotal(r Tick) float64 {
	sh.merged.Lock()
	defer sh.merged.Unlock()
	view, err := sh.mergedViewLocked()
	if err != nil {
		return 0
	}
	return view.EstimateTotal(r)
}

// InnerProduct estimates the inner product between this engine's combined
// stream and another sketch's stream over the last r ticks.
func (sh *Sharded) InnerProduct(other *Sketch, r Tick) (float64, error) {
	sh.merged.Lock()
	defer sh.merged.Unlock()
	view, err := sh.mergedViewLocked()
	if err != nil {
		return 0, err
	}
	return view.InnerProduct(other, r)
}

// Now reports the engine-wide high-water tick.
func (sh *Sharded) Now() Tick { return sh.now.Load() }

// Count reports total arrivals across all stripes since stream start.
func (sh *Sharded) Count() uint64 {
	var total uint64
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		total += s.sk.Count()
		s.mu.Unlock()
	}
	return total
}

// Width reports the Count-Min width shared by every stripe.
func (sh *Sharded) Width() int { return sh.shards[0].sk.Width() }

// Depth reports the Count-Min depth shared by every stripe.
func (sh *Sharded) Depth() int { return sh.shards[0].sk.Depth() }

// MemoryBytes reports the summed footprint of all stripes.
func (sh *Sharded) MemoryBytes() int {
	var total int
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		total += s.sk.MemoryBytes()
		s.mu.Unlock()
	}
	return total
}

// Marshal serializes the merged view of the combined stream — the same wire
// format as Sketch.Marshal, so coordinators can pull and Merge it with other
// sites' summaries. Returns nil if the merge fails (only possible with
// corrupted state).
func (sh *Sharded) Marshal() []byte {
	sh.merged.Lock()
	defer sh.merged.Unlock()
	view, err := sh.mergedViewLocked()
	if err != nil {
		return nil
	}
	return view.Marshal()
}

// Snapshot returns an independent single-sketch copy of the combined
// stream, built by merging the stripes.
func (sh *Sharded) Snapshot() (*Sketch, error) {
	sh.merged.Lock()
	defer sh.merged.Unlock()
	view, err := sh.mergedViewLocked()
	if err != nil {
		return nil, err
	}
	return view.Snapshot()
}

// mergedViewLocked returns a sketch summarizing the union of all stripes;
// sh.merged must be held, and stays held while the caller queries the view
// (sliding-window queries expire counters lazily, so even reads mutate).
// The view is cached: it is reused while no mutation has happened since it
// was built, or — when a MergeTTL is configured — while it is younger than
// the TTL. Stripes are snapshotted under their own locks one at a time
// (brief pauses per stripe), and the merge itself runs on the copies
// without blocking ingest.
func (sh *Sharded) mergedViewLocked() (*Sketch, error) {
	var v uint64
	for i := range sh.shards {
		v += sh.shards[i].version.Load()
	}
	if sh.merged.view != nil {
		if sh.merged.version == v {
			return sh.merged.view, nil
		}
		if sh.ttl > 0 && time.Since(sh.merged.builtAt) < sh.ttl {
			return sh.merged.view, nil
		}
	}
	now := sh.now.Load()
	parts := make([]*Sketch, len(sh.shards))
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		if now > s.sk.Now() {
			s.sk.Advance(now)
		}
		enc := s.sk.Marshal()
		s.mu.Unlock()
		part, err := Unmarshal(enc)
		if err != nil {
			return nil, fmt.Errorf("ecmsketch: decoding shard %d snapshot: %w", i, err)
		}
		parts[i] = part
	}
	view, err := Merge(parts...)
	if err != nil {
		return nil, fmt.Errorf("ecmsketch: merging shards: %w", err)
	}
	sh.merged.view = view
	sh.merged.version = v
	sh.merged.builtAt = time.Now()
	return view, nil
}
