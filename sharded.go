package ecmsketch

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ecmsketch/internal/core"
	"ecmsketch/internal/hashing"
)

// Sharded is a lock-striped ECM-sketch engine for concurrent workloads.
// Ingest is partitioned across P per-shard sketches by key hash, so
// concurrent writers contend only when they hit the same stripe — the
// paper's Theorem 4 mergeability applied *inside* one process for
// throughput, not just across distributed sites.
//
// Because routing is by key, every arrival of a key lands in exactly one
// shard: single-key point queries (Estimate, EstimateString,
// EstimateInterval) touch a single stripe and pay no merge error at all.
//
// Global queries (SelfJoin, EstimateTotal, InnerProduct, QueryBatch,
// Marshal, Snapshot) are served by a snapshot-based query engine layered
// over the stripes:
//
//   - Each stripe carries a version counter bumped on every mutation.
//     Rebuilding the global view snapshots only the stripes whose version
//     changed since the last build — an arena clone taken under the stripe
//     lock (three slab memcpys, see Sketch.Snapshot) — and reuses the
//     cached snapshot of every unchanged stripe without touching its lock.
//   - The snapshots are merged (the order-preserving ⊕ of Section 5.3,
//     with its bounded error inflation) into an immutable *view* published
//     by atomic pointer swap. A view is frozen at build time — advanced to
//     the engine clock, expiry caches settled — so any number of readers
//     can query it concurrently without locks.
//   - Rebuilds are single-flight: when the view expires (MergeTTL) under a
//     reader stampede, exactly one reader pays the merge; the others are
//     served the previous view lock-free until the new one is published.
//
// All methods are safe for concurrent use.
type Sharded struct {
	params Params
	ttl    time.Duration
	mask   uint64
	shards []shard

	// epoch binds delta-snapshot cursors to this engine instance; a
	// restarted or reconfigured engine mints a new one, invalidating every
	// outstanding cursor (pullers transparently re-baseline).
	epoch uint64

	// now is the global high-water tick across all shards; queries advance
	// the touched shard to it so expiry is aligned engine-wide.
	now atomic.Uint64

	// view is the current immutable merged view, swapped whole on rebuild;
	// nil until the first global query. Readers Load and query it with no
	// locking at all.
	view atomic.Pointer[shardedView]

	// rebuild is the single-flight guard of view rebuilds and owns the
	// per-stripe snapshot cache that makes rebuilds incremental. Only the
	// goroutine holding the mutex touches parts/versions.
	rebuild struct {
		sync.Mutex
		parts    []*Sketch // cached per-stripe snapshots, advanced to the view clock
		versions []uint64  // stripe version each cached part reflects
	}

	// rebuilds counts completed merged-view builds (see ViewRebuilds);
	// rebuildNs and rebuildWorkers record the last build's wall time and
	// snapshot-pool width for RebuildStats.
	rebuilds       atomic.Uint64
	rebuildNs      atomic.Int64
	rebuildWorkers atomic.Int64

	// notifier, when set, receives change notes after every mutation —
	// the hook standing-query evaluation hangs off. Stored behind an
	// atomic pointer so SetNotifier is safe against in-flight ingest.
	notifier atomic.Pointer[Notifier]

	// refreshStop/refreshDone bracket the background view refresher's
	// lifetime (nil when RefreshInterval is 0); closeOnce makes Close
	// idempotent.
	refreshStop chan struct{}
	refreshDone chan struct{}
	closeOnce   sync.Once

	// async, when non-nil, is the per-stripe ingest pipeline (Async config);
	// writers enqueue grouped sub-batches instead of taking stripe locks.
	async *asyncPipeline

	// dur, when non-nil, is the durability subsystem (Durability config):
	// applied mutations are WAL-appended under the stripe lock, and
	// checkpoints/recovery keep epoch and cell versions across restarts.
	dur *durableState
}

// shardedView is one immutable published state of the merged query engine.
// sk is frozen: it was advanced to its own clock when built and its clock
// never moves again, which makes every query on it — even the lazily
// expiring sliding-window reads — a pure read. The -race stress tests
// assert this.
type shardedView struct {
	sk      *Sketch
	version uint64 // sum of per-stripe versions the parts were snapshotted at
	builtAt time.Time
}

// shard pads each stripe to its own cache lines so neighboring locks don't
// false-share under heavy concurrent ingest. version counts the stripe's
// mutations, count caches sk.Count(), and deltaVer mirrors the sketch's
// arrival-mutation version (the stripe's delta-cursor component, which —
// unlike version — does not move on Advance-only mutations) — all written
// while holding mu (so the update is uncontended), read lock-free by the
// view cache check, Sharded.Count and DeltaSnapshot respectively.
type shard struct {
	mu       sync.Mutex
	sk       *Sketch
	version  atomic.Uint64
	count    atomic.Uint64
	deltaVer atomic.Uint64
	// Fields above total 40 bytes; pad the stride to two cache lines so no
	// two stripes ever share one.
	_ [128 - 40]byte
}

// ShardedConfig configures a Sharded engine.
type ShardedConfig struct {
	// Params configures every per-shard sketch. All shards share the seed,
	// dimensions and window configuration, so they stay mergeable.
	// Count-based windows are rejected: splitting a count-based window
	// across stripes changes its semantics (each stripe would cover its own
	// last N arrivals, not the stream's).
	Params Params
	// Shards is the stripe count P, rounded up to a power of two; 0 means
	// GOMAXPROCS. More stripes mean less write contention but a costlier
	// merged view for global queries.
	Shards int
	// MergeTTL bounds the staleness of the cached merged view serving
	// global queries. 0 means strict freshness: a global query never
	// returns answers older than the stripes at call time, re-merging (and
	// briefly serializing readers) after every write burst. A positive TTL
	// lets readers run lock-free against the published view; while a
	// TTL-expired view is being rebuilt, concurrent readers are served the
	// previous view, so the worst-case staleness is MergeTTL plus one
	// rebuild duration.
	MergeTTL time.Duration
	// RefreshInterval, when positive, starts a background goroutine that
	// every interval rebuilds the merged view if any stripe mutated since
	// the last build (regardless of MergeTTL), so the published view stays
	// current and TTL-expired rebuilds stop landing on the tail latency of
	// whichever reader happens to trip them. Set it at or below MergeTTL to
	// keep readers on the lock-free fast path essentially always. Engines
	// with a refresher hold a goroutine until Close is called; 0 (the
	// default) keeps the previous reader-driven rebuild behavior and needs
	// no Close.
	RefreshInterval time.Duration
	// Async moves ingest onto a per-stripe pipeline: every stripe gets an
	// owner goroutine consuming a bounded queue of pre-grouped sub-batches,
	// and writers only group, copy and enqueue — they never take stripe
	// locks, so concurrent writers scale with stripes instead of contending
	// on them. The trade is read-your-writes: a write is visible to queries,
	// delta cursors and standing-query evaluation only once its stripe owner
	// has applied it. Flush is the barrier — it returns after everything
	// enqueued before the call is applied, and a read after Flush observes a
	// consistent post-flush state. Async engines hold P goroutines until
	// Close (which flushes, stops the owners, and reverts writes to the
	// synchronous path). Off by default: zero-configuration engines keep
	// strictly synchronous semantics.
	Async bool
	// AsyncQueue bounds each stripe's queue depth in sub-batches; writers
	// block (backpressure) when a stripe's queue is full. 0 means 256.
	// Ignored unless Async is set.
	AsyncQueue int
	// Durability, when non-nil, makes the engine's state survive restarts:
	// construction recovers the persisted epoch, arena snapshots and WAL
	// from the Store (or starts a fresh epoch when there is nothing usable),
	// every applied mutation is WAL-logged, and checkpoints run on
	// SnapshotInterval. A recovered engine serves deltas from the same
	// epoch and cell versions as its predecessor, so no puller re-baselines.
	// On Async engines the durability boundary is apply time: Flush is the
	// barrier that makes earlier writes both applied and fsynced.
	Durability *DurabilityConfig
}

// NewSharded builds a lock-striped engine of identically configured,
// mergeable per-shard sketches.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if cfg.Params.Model == CountBased {
		return nil, fmt.Errorf("ecmsketch: Sharded requires time-based windows (count-based semantics do not survive key partitioning)")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("ecmsketch: Shards must be non-negative, got %d", cfg.Shards)
	}
	p := cfg.Shards
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	// Round up to a power of two so routing is a mask, not a modulo.
	pow := 1
	for pow < p {
		pow <<= 1
	}
	sh := &Sharded{params: cfg.Params, ttl: cfg.MergeTTL, mask: uint64(pow - 1), epoch: core.NewEpoch()}
	sh.shards = make([]shard, pow)
	for i := range sh.shards {
		s, err := New(cfg.Params)
		if err != nil {
			return nil, fmt.Errorf("ecmsketch: shard %d: %w", i, err)
		}
		// Distinct identifier salts keep randomized-wave event identifiers
		// globally unique across stripes (as NewCluster does across sites).
		// Cell-level salts are normalized too: stripes never draw cell
		// auto-identifiers, and deterministic salts make identically
		// configured engines byte-identical — the recovery contract durable
		// crash tests pin.
		s.SetIDSalt(0x9e37_79b9_7f4a_7c15 * uint64(i+1))
		s.NormalizeCellSalts()
		sh.shards[i].sk = s
	}
	if cfg.RefreshInterval < 0 {
		return nil, fmt.Errorf("ecmsketch: RefreshInterval must be non-negative, got %v", cfg.RefreshInterval)
	}
	if cfg.AsyncQueue < 0 {
		return nil, fmt.Errorf("ecmsketch: AsyncQueue must be non-negative, got %d", cfg.AsyncQueue)
	}
	if cfg.Durability != nil {
		// Recovery must complete before any background goroutine can
		// mutate the stripes, so it runs ahead of the async pipeline and
		// refresher below.
		if err := sh.initDurable(cfg.Durability); err != nil {
			return nil, fmt.Errorf("ecmsketch: durability: %w", err)
		}
	}
	if cfg.Async {
		depth := cfg.AsyncQueue
		if depth == 0 {
			depth = 256
		}
		a := &asyncPipeline{on: true, qs: make([]chan stripeMsg, pow)}
		sh.async = a
		a.done.Add(pow)
		for i := range a.qs {
			a.qs[i] = make(chan stripeMsg, depth)
			go sh.stripeOwner(i, a.qs[i])
		}
	}
	if cfg.RefreshInterval > 0 {
		sh.refreshStop = make(chan struct{})
		sh.refreshDone = make(chan struct{})
		go sh.refreshLoop(cfg.RefreshInterval)
	}
	return sh, nil
}

// refreshLoop is the background view refresher: every interval it rebuilds
// the merged view if it has gone stale, off every reader's critical path.
func (sh *Sharded) refreshLoop(interval time.Duration) {
	defer close(sh.refreshDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-sh.refreshStop:
			return
		case <-t.C:
			sh.refreshView()
		}
	}
}

// refreshView rebuilds the merged view if it is missing or behind the
// stripes. Unlike reader-driven freshness (viewFresh), the refresher
// deliberately ignores the TTL arm: its job is to keep the published view
// at the latest stripe version so that readers' TTL never expires against
// a stale view and the rebuild never lands on a reader's tail. It never
// blocks behind a reader-driven rebuild (TryLock): if someone else is
// already merging, the refresher's work is being done for it. Rebuild
// errors are dropped — the next global query re-attempts and surfaces them.
func (sh *Sharded) refreshView() {
	if v := sh.view.Load(); v != nil && v.version == sh.versionSum() {
		return
	}
	if !sh.rebuild.TryLock() {
		return
	}
	defer sh.rebuild.Unlock()
	if v := sh.view.Load(); v != nil && v.version == sh.versionSum() {
		return
	}
	_, _ = sh.rebuildLocked()
}

// Close stops the engine's background goroutines: the view refresher, if
// any, and — on Async engines — the per-stripe ingest owners, after
// draining every queued write. On durable engines it then writes a final
// checkpoint and shuts the WAL down synced, so a clean restart replays
// nothing. It is idempotent and a no-op on engines built without any of
// the three. The engine remains usable after Close; writes revert to the
// synchronous path (and, on durable engines, stop being persisted).
func (sh *Sharded) Close() error {
	var err error
	sh.closeOnce.Do(func() {
		if sh.async != nil {
			sh.async.stop()
		}
		if sh.refreshStop != nil {
			close(sh.refreshStop)
			<-sh.refreshDone
		}
		if sh.dur != nil {
			err = sh.closeDurable()
		}
	})
	return err
}

// Shards reports the stripe count P.
func (sh *Sharded) Shards() int { return len(sh.shards) }

// Params returns the per-shard sketch configuration.
func (sh *Sharded) Params() Params { return sh.params }

func (sh *Sharded) shardFor(key uint64) *shard {
	return &sh.shards[hashing.Mix64(key)&sh.mask]
}

// observe raises the global high-water tick to t.
func (sh *Sharded) observe(t Tick) {
	for {
		cur := sh.now.Load()
		if t <= cur || sh.now.CompareAndSwap(cur, t) {
			return
		}
	}
}

// noteMutation publishes a stripe's post-mutation state: the version bump
// invalidates its cached snapshot, the count cache feeds lock-free
// Sharded.Count reads. Callers must hold s.mu.
func (s *shard) noteMutation() {
	s.count.Store(s.sk.Count())
	s.deltaVer.Store(s.sk.DeltaVersion())
	s.version.Add(1)
}

// SetNotifier installs (or, with nil, removes) the change-note hook. Notes
// are delivered synchronously on the mutating goroutine after the stripe
// locks are released — the notifier may query the engine, and a slow
// notifier slows its caller, never other writers. The standing-query
// registry is the intended notifier; see StandingRegistry.
func (sh *Sharded) SetNotifier(n Notifier) {
	if n == nil {
		sh.notifier.Store(nil)
		return
	}
	sh.notifier.Store(&n)
}

func (sh *Sharded) loadNotifier() Notifier {
	if p := sh.notifier.Load(); p != nil {
		return *p
	}
	return nil
}

// CellIndices reports the Count-Min cells key's estimate reads — identical
// in every stripe, since all stripes share one hash family (see
// Sketch.CellIndices).
func (sh *Sharded) CellIndices(key uint64, dst []int) []int {
	return sh.shards[0].sk.CellIndices(key, dst)
}

// Add registers one arrival of key at tick t.
func (sh *Sharded) Add(key uint64, t Tick) { sh.AddN(key, t, 1) }

// AddN registers n arrivals of key at tick t; n = 0 counts as a unit
// arrival, the engine-wide Event contract (previously only the async and
// batch paths normalized it, so sync and async disagreed on n = 0).
func (sh *Sharded) AddN(key uint64, t Tick, n uint64) {
	if n == 0 {
		n = 1
	}
	if sh.async != nil && sh.addNAsync(key, t, n) {
		return
	}
	sh.observe(t)
	si := int(hashing.Mix64(key) & sh.mask)
	s := &sh.shards[si]
	s.mu.Lock()
	pre := s.sk.Now()
	// Apply the batch clamping contract (see Ingestor): ticks are 1-based
	// and never behind the engine clock. The async path already normalizes
	// (it routes through AddBatch); clamping here keeps sync ingest
	// identical — and makes the logged record replay to the same state,
	// since a below-clock tick would otherwise resolve against per-cell
	// clocks the WAL cannot reconstruct.
	if t < pre {
		t = pre
	}
	if t == 0 {
		t = 1
	}
	s.sk.AddN(key, t, n)
	if sh.dur != nil {
		one := [1]Event{{Key: key, Tick: t, N: n}}
		sh.logBatch(si, pre, s.sk.DeltaVersion(), one[:])
	}
	s.noteMutation()
	s.mu.Unlock()
	if nt := sh.loadNotifier(); nt != nil {
		nt.NoteKey(key)
	}
}

// AddString registers one arrival of a string-keyed item.
func (sh *Sharded) AddString(key string, t Tick) { sh.AddN(KeyString(key), t, 1) }

// AddBatch registers a slice of arrivals, grouping them per stripe so each
// shard lock is taken at most once for the whole batch. Events are applied
// in slice order within each stripe, with ticks validated once per batch
// against the engine clock (see Ingestor for the clamping contract), so
// every stripe applies the same non-decreasing tick sequence a single
// sketch would. Grouping threads index chains through pooled scratch
// slices instead of materializing per-stripe buckets, so steady-state
// batch ingest allocates nothing.
func (sh *Sharded) AddBatch(events []Event) {
	// Chain indices are int32; chunk absurdly large batches.
	const maxChunk = 1 << 30
	for len(events) > maxChunk {
		sh.AddBatch(events[:maxChunk])
		events = events[maxChunk:]
	}
	if len(events) == 0 {
		return
	}
	if sh.async != nil && sh.addBatchAsync(events) {
		return
	}
	if len(sh.shards) == 1 {
		// The lone stripe's sketch clock tracks the engine clock exactly, so
		// its own batch validation is the engine-level one.
		s := &sh.shards[0]
		s.mu.Lock()
		pre := s.sk.Now()
		s.sk.AddBatch(events)
		if sh.dur != nil {
			sh.logBatch(0, pre, s.sk.DeltaVersion(), events)
		}
		maxTick := s.sk.Now()
		s.noteMutation()
		s.mu.Unlock()
		sh.observe(maxTick)
		if nt := sh.loadNotifier(); nt != nil {
			nt.NoteEvents(events)
		}
		return
	}
	sc := batchScratchPool.Get().(*shardedBatchScratch)
	defer batchScratchPool.Put(sc)
	sh.groupByStripe(sc, events)
	// Gather each stripe's chain into one scratch sub-batch and hand it to
	// the sketch's own batch pipeline (row-major arena sweep for EH), so
	// striping does not forfeit the devirtualized hot path. The engine-level
	// ticks are already clamped, so the per-sketch validation is a no-op
	// pass over an in-order sequence.
	for si := range sh.shards {
		i := sc.heads[si]
		if i < 0 {
			continue
		}
		sub := sc.sub[:0]
		for ; i >= 0; i = sc.next[i] {
			ev := events[i]
			ev.Tick = sc.ticks[i]
			sub = append(sub, ev)
		}
		s := &sh.shards[si]
		s.mu.Lock()
		pre := s.sk.Now()
		s.sk.AddBatch(sub)
		if sh.dur != nil {
			// sub carries the engine-clamped ticks, so the record replays
			// through the same per-sketch fast path it was applied on.
			sh.logBatch(si, pre, s.sk.DeltaVersion(), sub)
		}
		s.noteMutation()
		s.mu.Unlock()
		sc.sub = sub[:0] // retain any growth for the next stripe
	}
	if nt := sh.loadNotifier(); nt != nil {
		nt.NoteEvents(events)
	}
}

// groupByStripe threads per-stripe index chains through sc's pooled scratch
// for events — no per-stripe sub-slices are materialized — while clamping
// ticks once against the engine clock (see Ingestor), and raises the
// engine's high-water tick. Both the synchronous apply loop and the async
// enqueue path consume the chains.
func (sh *Sharded) groupByStripe(sc *shardedBatchScratch, events []Event) {
	sc.resize(len(sh.shards), len(events))
	heads, tails, next, ticks := sc.heads, sc.tails, sc.next, sc.ticks
	for i := range heads {
		heads[i] = -1
	}
	lo := sh.now.Load()
	if lo == 0 {
		lo = 1 // ticks are 1-based
	}
	for i, ev := range events {
		idx := hashing.Mix64(ev.Key) & sh.mask
		if heads[idx] < 0 {
			heads[idx] = int32(i)
		} else {
			next[tails[idx]] = int32(i)
		}
		tails[idx] = int32(i)
		next[i] = -1
		if ev.Tick > lo {
			lo = ev.Tick
		}
		ticks[i] = lo
	}
	sh.observe(lo)
}

// shardedBatchScratch is the pooled working memory of Sharded.AddBatch:
// per-stripe chain heads/tails, per-event links and validated ticks, and
// the sub-batch buffer handed to each stripe's sketch.
type shardedBatchScratch struct {
	heads, tails []int32
	next         []int32
	ticks        []Tick
	sub          []Event
}

var batchScratchPool = sync.Pool{New: func() any { return new(shardedBatchScratch) }}

func (sc *shardedBatchScratch) resize(stripes, events int) {
	if cap(sc.heads) < stripes {
		sc.heads = make([]int32, stripes)
		sc.tails = make([]int32, stripes)
	}
	sc.heads = sc.heads[:stripes]
	sc.tails = sc.tails[:stripes]
	if cap(sc.next) < events {
		sc.next = make([]int32, events)
		sc.ticks = make([]Tick, events)
	}
	sc.next = sc.next[:events]
	sc.ticks = sc.ticks[:events]
	if cap(sc.sub) < events {
		sc.sub = make([]Event, 0, events)
	}
}

// asyncPipeline is the per-stripe ingest pipeline of an Async engine: one
// bounded queue plus one owner goroutine per stripe. Writers hold mu for
// reading (enqueue), stop holds it for writing — the lifecycle gate that
// makes shutdown race-free against in-flight enqueues without a lock on
// the per-event path.
type asyncPipeline struct {
	mu   sync.RWMutex
	on   bool
	qs   []chan stripeMsg
	done sync.WaitGroup
	// bufs pools the event chunks shipped through the queues; owners return
	// them after applying, so steady-state async ingest allocates nothing.
	bufs sync.Pool
}

// stripeMsg is one unit of work on a stripe queue: exactly one of events
// (apply this sub-batch), adv (advance the stripe clock) or flush (barrier
// acknowledgement) is set.
type stripeMsg struct {
	events []Event
	adv    *advanceMsg
	flush  *sync.WaitGroup
}

// advanceMsg fans one engine-level Advance out to every stripe; the last
// owner to apply it delivers the notifier's NoteAdvance, so standing-query
// evaluation sees the fully advanced engine.
type advanceMsg struct {
	t       Tick
	pending atomic.Int32
}

func (a *asyncPipeline) getBuf() []Event {
	if p := a.bufs.Get(); p != nil {
		return (*p.(*[]Event))[:0]
	}
	return nil
}

func (a *asyncPipeline) putBuf(b []Event) {
	a.bufs.Put(&b)
}

// stop flushes nothing but closes every queue and waits for the owners to
// drain and exit; writes arriving after stop apply synchronously.
func (a *asyncPipeline) stop() {
	a.mu.Lock()
	if !a.on {
		a.mu.Unlock()
		return
	}
	a.on = false
	for _, q := range a.qs {
		close(q)
	}
	a.mu.Unlock()
	a.done.Wait()
}

// stripeOwner is stripe i's single mutator in async mode: it applies
// queued sub-batches under the stripe lock (uncontended by other writers —
// only queries and snapshots ever share it) and delivers change notes from
// its own goroutine.
func (sh *Sharded) stripeOwner(i int, q chan stripeMsg) {
	defer sh.async.done.Done()
	s := &sh.shards[i]
	for m := range q {
		switch {
		case m.flush != nil:
			m.flush.Done()
		case m.adv != nil:
			s.mu.Lock()
			s.sk.Advance(m.adv.t)
			if sh.dur != nil {
				sh.logAdvance(i, m.adv.t)
			}
			s.noteMutation()
			s.mu.Unlock()
			if m.adv.pending.Add(-1) == 0 {
				if nt := sh.loadNotifier(); nt != nil {
					nt.NoteAdvance()
				}
			}
		default:
			s.mu.Lock()
			pre := s.sk.Now()
			s.sk.AddBatch(m.events)
			if sh.dur != nil {
				sh.logBatch(i, pre, s.sk.DeltaVersion(), m.events)
			}
			s.noteMutation()
			s.mu.Unlock()
			if nt := sh.loadNotifier(); nt != nil {
				nt.NoteEvents(m.events)
			}
			sh.async.putBuf(m.events)
		}
	}
}

// addBatchAsync groups events per stripe and enqueues one copied sub-batch
// per touched stripe. Reports false when the pipeline is stopped (Close
// raced the call) so the caller falls back to the synchronous path.
func (sh *Sharded) addBatchAsync(events []Event) bool {
	a := sh.async
	a.mu.RLock()
	if !a.on {
		a.mu.RUnlock()
		return false
	}
	sc := batchScratchPool.Get().(*shardedBatchScratch)
	sh.groupByStripe(sc, events)
	for si := range sh.shards {
		i := sc.heads[si]
		if i < 0 {
			continue
		}
		buf := a.getBuf()
		for ; i >= 0; i = sc.next[i] {
			ev := events[i]
			ev.Tick = sc.ticks[i]
			buf = append(buf, ev)
		}
		a.qs[si] <- stripeMsg{events: buf}
	}
	batchScratchPool.Put(sc)
	a.mu.RUnlock()
	return true
}

// addNAsync enqueues a single arrival to its stripe's queue. Reports false
// when the pipeline is stopped.
func (sh *Sharded) addNAsync(key uint64, t Tick, n uint64) bool {
	a := sh.async
	a.mu.RLock()
	if !a.on {
		a.mu.RUnlock()
		return false
	}
	sh.observe(t)
	buf := append(a.getBuf(), Event{Key: key, Tick: t, N: n})
	a.qs[hashing.Mix64(key)&sh.mask] <- stripeMsg{events: buf}
	a.mu.RUnlock()
	return true
}

// advanceAsync fans an Advance out to every stripe queue, keeping it
// ordered behind previously enqueued batches. Reports false when the
// pipeline is stopped.
func (sh *Sharded) advanceAsync(t Tick) bool {
	a := sh.async
	a.mu.RLock()
	if !a.on {
		a.mu.RUnlock()
		return false
	}
	sh.observe(t)
	adv := &advanceMsg{t: t}
	adv.pending.Store(int32(len(a.qs)))
	for _, q := range a.qs {
		q <- stripeMsg{adv: adv}
	}
	a.mu.RUnlock()
	return true
}

// Flush is the async-ingest barrier: it returns once every write enqueued
// before the call has been applied to its stripe, so a subsequent query,
// delta pull or standing-query evaluation observes all of them. On a
// synchronous engine (Async off, or after Close) the apply barrier is a
// no-op — writes are already applied when their call returns. On durable
// engines Flush additionally fsyncs the WAL, making everything it covers
// durable regardless of SyncInterval.
func (sh *Sharded) Flush() {
	a := sh.async
	if a != nil {
		a.mu.RLock()
		if a.on {
			var wg sync.WaitGroup
			wg.Add(len(a.qs))
			for _, q := range a.qs {
				q <- stripeMsg{flush: &wg}
			}
			a.mu.RUnlock()
			wg.Wait()
		} else {
			a.mu.RUnlock()
		}
	}
	if sh.dur != nil {
		sh.dur.syncNow()
	}
}

// Advance moves the window clock of every stripe forward.
func (sh *Sharded) Advance(t Tick) {
	if sh.async != nil && sh.advanceAsync(t) {
		return
	}
	sh.observe(t)
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		s.sk.Advance(t)
		if sh.dur != nil {
			// Advances are logged per stripe, under each stripe's lock, so
			// per-stripe WAL order matches apply order even when a batch on
			// another goroutine interleaves with this loop. Read-path
			// advances (Estimate settling a stripe) are deliberately not
			// logged: they are pure expiry, and batch records replay the
			// expiry frontier they established via their pre-apply clock.
			sh.logAdvance(i, t)
		}
		s.noteMutation()
		s.mu.Unlock()
	}
	if nt := sh.loadNotifier(); nt != nil {
		nt.NoteAdvance()
	}
}

// Estimate answers a point query over the last r ticks. Key-hash routing
// means the answer comes from the single stripe owning the key, with no
// merge error; the stripe is first advanced to the engine-wide clock so
// expiry matches a single-sketch deployment. For multi-key reads, or when
// the answers must come from one consistent cut, use QueryBatch.
func (sh *Sharded) Estimate(key uint64, r Tick) float64 {
	now := sh.now.Load()
	si := int(hashing.Mix64(key) & sh.mask)
	s := &sh.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	if now > s.sk.Now() {
		sh.settleStripe(si, now)
	}
	return s.sk.Estimate(key, r)
}

// EstimateString answers a point query for a string key.
func (sh *Sharded) EstimateString(key string, r Tick) float64 {
	return sh.Estimate(KeyString(key), r)
}

// EstimateInterval answers a point query over the tick interval (from, to],
// again from the single stripe owning the key.
func (sh *Sharded) EstimateInterval(key uint64, from, to Tick) float64 {
	now := sh.now.Load()
	si := int(hashing.Mix64(key) & sh.mask)
	s := &sh.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	if now > s.sk.Now() {
		sh.settleStripe(si, now)
	}
	return s.sk.EstimateInterval(key, from, to)
}

// SelfJoin estimates F₂ over the last r ticks from the merged view.
func (sh *Sharded) SelfJoin(r Tick) float64 {
	view, err := sh.queryView()
	if err != nil {
		return 0
	}
	return view.SelfJoin(r)
}

// EstimateTotal estimates ‖a_r‖₁ over the last r ticks from the merged view.
func (sh *Sharded) EstimateTotal(r Tick) float64 {
	view, err := sh.queryView()
	if err != nil {
		return 0
	}
	return view.EstimateTotal(r)
}

// InnerProduct estimates the inner product between this engine's combined
// stream and another sketch's stream over the last r ticks. Sliding-window
// queries expire lazily — evaluating a sketch mutates it — so the query
// runs against a private snapshot of other: the caller's sketch is never
// written, and concurrent InnerProduct calls sharing one reference sketch
// stay race-free.
func (sh *Sharded) InnerProduct(other *Sketch, r Tick) (float64, error) {
	view, err := sh.queryView()
	if err != nil {
		return 0, err
	}
	o := other
	if other != nil {
		if o, err = other.Snapshot(); err != nil {
			return 0, err
		}
	}
	return view.InnerProduct(o, r)
}

// QueryBatch answers a multi-key query — point estimates for every key plus
// the optional total and self-join aggregates — from one frozen merged
// view, so all answers in the batch describe the same consistent cut of the
// combined stream. Unlike single-key Estimate calls (which route to the
// key's stripe and pay no merge error), batched point answers carry the
// merged view's bounded error inflation; that is the price of consistency.
func (sh *Sharded) QueryBatch(q QueryBatch) (QueryResult, error) {
	view, err := sh.queryView()
	if err != nil {
		return QueryResult{}, err
	}
	return view.QueryBatch(q)
}

// QueryDirect answers a multi-key point query by routing each key to its
// owning stripe — the batched form of Estimate. Because every arrival of a
// key lands in exactly one stripe, each answer carries zero merge error,
// and no merged view is built or touched (ViewRebuilds does not move). The
// trade against QueryBatch is consistency: answers come from per-stripe
// states that concurrent writers may interleave with, so the batch is an
// inconsistent cut. Aggregates need the merged view and are rejected here;
// request them through QueryBatch.
func (sh *Sharded) QueryDirect(q QueryBatch) (QueryResult, error) {
	if q.Total || q.SelfJoin {
		return QueryResult{}, errors.New("ecmsketch: direct reads answer point queries only (aggregates need the merged view; use QueryBatch)")
	}
	now := sh.now.Load()
	r := q.Range
	if r == 0 {
		r = sh.params.WindowLength
	}
	res := QueryResult{Now: now, Range: r}
	if len(q.Keys) == 0 {
		return res, nil
	}
	res.Estimates = make([]float64, len(q.Keys))
	// Group key positions by owning stripe so each touched stripe's lock is
	// taken once for all its keys, like ingest's grouped batches.
	perStripe := make([][]int, len(sh.shards))
	for i, key := range q.Keys {
		si := int(hashing.Mix64(key) & sh.mask)
		perStripe[si] = append(perStripe[si], i)
	}
	for si, idxs := range perStripe {
		if len(idxs) == 0 {
			continue
		}
		s := &sh.shards[si]
		s.mu.Lock()
		if now > s.sk.Now() {
			sh.settleStripe(si, now)
		}
		for _, i := range idxs {
			res.Estimates[i] = s.sk.Estimate(q.Keys[i], r)
		}
		s.mu.Unlock()
	}
	return res, nil
}

// RebuildStats reports the last merged-view rebuild: wall time in
// nanoseconds and the worker-pool width its per-stripe snapshot stage ran
// at (1 = sequential). Zeros until the first rebuild. Exposed through
// /v1/stats next to ViewRebuilds.
func (sh *Sharded) RebuildStats() (mergeNs int64, workers int) {
	return sh.rebuildNs.Load(), int(sh.rebuildWorkers.Load())
}

// Now reports the engine-wide high-water tick.
func (sh *Sharded) Now() Tick { return sh.now.Load() }

// Count reports total arrivals across all stripes since stream start. The
// read is lock-free: each stripe caches its sketch's count under the stripe
// lock on every mutation, and Count sums the caches, so monitoring endpoints
// polling it never stall ingest (and never race with it).
func (sh *Sharded) Count() uint64 {
	var total uint64
	for i := range sh.shards {
		total += sh.shards[i].count.Load()
	}
	return total
}

// ViewRebuilds reports how many merged-view builds the engine has performed
// since construction. Each build snapshots the stripes that changed since
// the previous build and re-merges; a well-tuned MergeTTL shows rebuild
// counts far below global-query counts. Exposed for observability (the
// ecmserver /v1/stats endpoint reports it) and for the single-flight tests.
func (sh *Sharded) ViewRebuilds() uint64 { return sh.rebuilds.Load() }

// Width reports the Count-Min width shared by every stripe.
func (sh *Sharded) Width() int { return sh.shards[0].sk.Width() }

// Depth reports the Count-Min depth shared by every stripe.
func (sh *Sharded) Depth() int { return sh.shards[0].sk.Depth() }

// MemoryBytes reports the summed footprint of all stripes. The snapshot
// cache and published view of the query engine add up to roughly one extra
// stripe-set on top of this while global queries are in use.
func (sh *Sharded) MemoryBytes() int {
	var total int
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		total += s.sk.MemoryBytes()
		s.mu.Unlock()
	}
	return total
}

// Marshal serializes the merged view of the combined stream — the same wire
// format as Sketch.Marshal, so coordinators can pull and Merge it with other
// sites' summaries. Serialization is a pure read of the frozen view (scratch
// is call-local), so concurrent pulls need no coordination. Returns nil if
// the merge fails (only possible with corrupted state).
func (sh *Sharded) Marshal() []byte {
	view, err := sh.queryView()
	if err != nil {
		return nil
	}
	return view.Marshal()
}

// Snapshot returns an independent single-sketch copy of the combined
// stream: the current merged view, cloned (an arena copy for the default
// exponential-histogram engine — see Sketch.Snapshot).
func (sh *Sharded) Snapshot() (*Sketch, error) {
	view, err := sh.queryView()
	if err != nil {
		return nil, err
	}
	return view.Snapshot()
}

// DeltaSnapshot answers a cursor-based incremental pull over the stripes
// (see DeltaSnapshotter). The cursor is the vector of per-stripe
// arrival-mutation versions plus the engine epoch; a stripe whose version
// is unchanged contributes zero bytes, and within a changed stripe only the
// cells whose version moved ship — for all three algorithms, now that the
// wave engines share the flat arena's change tracking. Unlike full
// snapshots, delta pulls never build or touch the merged view: the puller
// holds the stripes and merges on its side, so a steady-state pull loop
// costs the site a few stripe clones instead of a P-way merge.
//
// An unrecognized cursor — zero, another epoch, versions from the future —
// yields a full baseline instead: every stripe's complete encoding under
// one multipart framing, re-baselining the puller.
func (sh *Sharded) DeltaSnapshot(since Cursor) ([]byte, Cursor, bool, error) {
	engineNow := sh.now.Load()
	cur := Cursor{Epoch: sh.epoch, Vers: make([]uint64, len(sh.shards))}
	valid := since.Epoch == sh.epoch && len(since.Vers) == len(sh.shards)
	if valid {
		for i := range sh.shards {
			if since.Vers[i] > sh.shards[i].deltaVer.Load() {
				valid = false // versions this engine never issued
				break
			}
		}
	}
	if !valid {
		parts := make([][]byte, len(sh.shards))
		for i := range sh.shards {
			snap, ver, err := sh.stripeSnapshot(i)
			if err != nil {
				return nil, Cursor{}, false, err
			}
			snap.Advance(engineNow) // settle the clone to the engine clock
			// Stripes hold only their share of the keyspace, so most cells
			// are untouched: the sparse form elides them, bringing the
			// multipart baseline down from ~2× the merged-view encoding to
			// roughly the occupied cells alone.
			parts[i] = snap.MarshalSparse()
			cur.Vers[i] = ver
		}
		return core.EncodeMultiFull(sh.epoch, engineNow, parts), cur, true, nil
	}
	var changed []core.PartDelta
	for i := range sh.shards {
		if v := sh.shards[i].deltaVer.Load(); v == since.Vers[i] {
			cur.Vers[i] = v // unchanged stripe: zero bytes
			continue
		}
		snap, ver, err := sh.stripeSnapshot(i)
		if err != nil {
			return nil, Cursor{}, false, err
		}
		cur.Vers[i] = ver
		if ver == since.Vers[i] {
			continue // settled between the atomic check and the lock
		}
		snap.Advance(engineNow)
		// All three paper algorithms live on flat arenas with per-cell change
		// tracking, so every changed stripe ships cell-granular.
		sub := snap.AppendDeltaSince(nil, sh.epoch, since.Vers[i])
		changed = append(changed, core.PartDelta{Index: i, Payload: sub})
	}
	return core.EncodeMultiDelta(sh.epoch, engineNow, len(sh.shards), changed), cur, false, nil
}

// stripeSnapshot clones stripe i under its lock and reports the
// arrival-mutation version the clone reflects.
func (sh *Sharded) stripeSnapshot(i int) (*Sketch, uint64, error) {
	s := &sh.shards[i]
	s.mu.Lock()
	ver := s.sk.DeltaVersion()
	snap, err := s.sk.Snapshot()
	s.mu.Unlock()
	if err != nil {
		return nil, 0, fmt.Errorf("ecmsketch: snapshotting shard %d: %w", i, err)
	}
	return snap, ver, nil
}

// versionSum folds the per-stripe version counters into the freshness token
// the view cache compares against. Versions only grow, so two equal sums
// imply every stripe is unchanged.
func (sh *Sharded) versionSum() uint64 {
	var v uint64
	for i := range sh.shards {
		v += sh.shards[i].version.Load()
	}
	return v
}

// viewFresh reports whether a published view may serve global queries
// without a rebuild: either no stripe has mutated since it was built, or a
// MergeTTL is configured and has not lapsed.
func (sh *Sharded) viewFresh(v *shardedView) bool {
	if v.version == sh.versionSum() {
		return true
	}
	return sh.ttl > 0 && time.Since(v.builtAt) < sh.ttl
}

// queryView returns the sketch global queries are answered from. The fast
// path is entirely lock-free: load the published view, check freshness
// (atomic version sum or TTL), query it. When a rebuild is needed it is
// single-flight; with a MergeTTL configured, readers that lose the race are
// served the previous view instead of blocking behind the merge.
func (sh *Sharded) queryView() (*Sketch, error) {
	v := sh.view.Load()
	if v != nil && sh.viewFresh(v) {
		return v.sk, nil
	}
	if v != nil && sh.ttl > 0 {
		// Stale view, staleness tolerated: exactly one reader rebuilds,
		// everyone else keeps reading the previous view lock-free.
		if !sh.rebuild.TryLock() {
			return v.sk, nil
		}
	} else {
		// First global query (nothing to serve yet) or strict-freshness
		// mode (MergeTTL == 0): block until a fresh view exists.
		sh.rebuild.Lock()
	}
	defer sh.rebuild.Unlock()
	// Re-check under the lock: the rebuild we queued behind may have
	// published exactly the view we need.
	if v := sh.view.Load(); v != nil && sh.viewFresh(v) {
		return v.sk, nil
	}
	return sh.rebuildLocked()
}

// rebuildLocked builds and publishes a fresh merged view; sh.rebuild must
// be held. The build is incremental: only stripes whose version moved since
// their cached snapshot was taken are re-snapshotted (an arena clone under
// the stripe lock); unchanged stripes contribute their cached snapshot
// without touching their lock at all. The merge itself runs on the
// snapshots, never blocking ingest.
func (sh *Sharded) rebuildLocked() (*Sketch, error) {
	now := sh.now.Load()
	if sh.rebuild.parts == nil {
		sh.rebuild.parts = make([]*Sketch, len(sh.shards))
		sh.rebuild.versions = make([]uint64, len(sh.shards))
	}
	start := time.Now()
	// Per-stripe clone+advance is independent work (each stripe's lock and
	// its cache slots are its own), so fan it across a worker pool; the
	// parts land in the same cache slots in the same state as a sequential
	// sweep, so the merge below — itself parallel on large arrays, see
	// core.SetMergeParallelism — stays byte-identical either way.
	workers := runtime.GOMAXPROCS(0)
	if p := core.MergeParallelism(); p > 0 && p < workers {
		workers = p
	}
	if workers > len(sh.shards) {
		workers = len(sh.shards)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > 1 {
		errs := make([]error, workers)
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sh.shards) {
						return
					}
					if err := sh.refreshPart(i, now); err != nil && errs[w] == nil {
						errs[w] = err
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		for i := range sh.shards {
			if err := sh.refreshPart(i, now); err != nil {
				return nil, err
			}
		}
	}
	var vsum uint64
	for i := range sh.shards {
		vsum += sh.rebuild.versions[i]
	}
	view, err := Merge(sh.rebuild.parts...)
	if err != nil {
		return nil, fmt.Errorf("ecmsketch: merging shards: %w", err)
	}
	// Merge advanced the view to the engine clock; from here on its clock
	// never moves, so concurrent queries on it are pure reads.
	sh.view.Store(&shardedView{sk: view, version: vsum, builtAt: time.Now()})
	sh.rebuilds.Add(1)
	sh.rebuildNs.Store(time.Since(start).Nanoseconds())
	sh.rebuildWorkers.Store(int64(workers))
	return view, nil
}

// refreshPart brings stripe i's cached snapshot up to date (an arena clone
// under the stripe lock when its version moved, a no-op otherwise) and
// aligns it with the engine clock, so the merge sees the same expiry
// frontier a single sketch would. Only the rebuild holder runs it; distinct
// stripes may refresh concurrently.
func (sh *Sharded) refreshPart(i int, now Tick) error {
	s := &sh.shards[i]
	ver := s.version.Load()
	if sh.rebuild.parts[i] == nil || sh.rebuild.versions[i] != ver {
		s.mu.Lock()
		ver = s.version.Load() // stable while mu is held
		part, err := s.sk.Snapshot()
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("ecmsketch: snapshotting shard %d: %w", i, err)
		}
		sh.rebuild.parts[i] = part
		sh.rebuild.versions[i] = ver
	}
	if now > sh.rebuild.parts[i].Now() {
		sh.rebuild.parts[i].Advance(now)
	}
	return nil
}
