package ecmsketch

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func asyncTestParams() Params {
	return Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 1000, Seed: 9}
}

// TestShardedAsyncEquivalence: an async engine after Flush holds exactly
// the state a synchronous engine holds after the same single-writer call
// sequence — per-stripe application order is the call order, so the stripe
// sketches (and therefore the merged view) are byte-identical.
func TestShardedAsyncEquivalence(t *testing.T) {
	syncEng, err := NewSharded(ShardedConfig{Params: asyncTestParams(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	asyncEng, err := NewSharded(ShardedConfig{Params: asyncTestParams(), Shards: 4, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	defer asyncEng.Close()

	rng := rand.New(rand.NewSource(7))
	tick := Tick(1)
	for round := 0; round < 60; round++ {
		switch round % 5 {
		case 3:
			tick += Tick(rng.Intn(300))
			syncEng.Advance(tick)
			asyncEng.Advance(tick)
		case 4:
			k := rng.Uint64() % 64
			syncEng.AddN(k, tick, 3)
			asyncEng.AddN(k, tick, 3)
		default:
			evs := make([]Event, 1+rng.Intn(100))
			for i := range evs {
				if rng.Intn(3) == 0 {
					tick++
				}
				evs[i] = Event{Key: rng.Uint64() % 64, Tick: tick, N: uint64(1 + rng.Intn(4))}
			}
			syncEng.AddBatch(evs)
			asyncEng.AddBatch(evs)
		}
	}
	asyncEng.Flush()
	if sc, ac := syncEng.Count(), asyncEng.Count(); sc != ac {
		t.Fatalf("counts diverged: sync %d async %d", sc, ac)
	}
	if !bytes.Equal(syncEng.Marshal(), asyncEng.Marshal()) {
		t.Fatal("merged views diverged between sync and flushed async ingest")
	}
	for k := uint64(0); k < 64; k++ {
		if se, ae := syncEng.Estimate(k, 1000), asyncEng.Estimate(k, 1000); se != ae {
			t.Fatalf("key %d: sync estimate %g, async %g", k, se, ae)
		}
	}
}

// TestShardedAsyncFlushBarrier: everything enqueued before Flush is
// visible to reads after it.
func TestShardedAsyncFlushBarrier(t *testing.T) {
	eng, err := NewSharded(ShardedConfig{Params: asyncTestParams(), Shards: 2, Async: true, AsyncQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var total uint64
	for round := 0; round < 50; round++ {
		evs := make([]Event, 40)
		for i := range evs {
			evs[i] = Event{Key: uint64(i), Tick: Tick(round + 1), N: 1}
		}
		eng.AddBatch(evs)
		total += uint64(len(evs))
	}
	eng.Flush()
	if got := eng.Count(); got != total {
		t.Fatalf("post-flush count %d, want %d", got, total)
	}
}

// TestShardedAsyncCloseReverts: Close drains the queues and subsequent
// writes apply synchronously — the engine stays usable.
func TestShardedAsyncCloseReverts(t *testing.T) {
	eng, err := NewSharded(ShardedConfig{Params: asyncTestParams(), Shards: 2, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.Add(1, 5)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Count(); got != 1 {
		t.Fatalf("close did not drain: count %d", got)
	}
	eng.Add(2, 6) // synchronous now: visible without Flush
	if got := eng.Count(); got != 2 {
		t.Fatalf("post-close write not applied synchronously: count %d", got)
	}
	eng.Flush() // no-op, must not hang
	if err := eng.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestShardedAsyncStress exercises the full concurrent surface of an async
// engine at once — writers, point readers, global-view readers, delta
// pullers and a standing-query registry fed from the owner goroutines —
// and then checks final consistency after the last Flush. CI runs this
// under -race; the assertions here are the non-timing ones.
func TestShardedAsyncStress(t *testing.T) {
	eng, err := NewSharded(ShardedConfig{Params: asyncTestParams(), Shards: 4, Async: true, AsyncQueue: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	reg := NewStandingRegistry(StandingConfig{Window: 1000})
	reg.Bind(eng)
	eng.SetNotifier(reg)
	defer eng.SetNotifier(nil)
	if _, err := reg.Subscribe([]StandingQuery{
		{Kind: StandingThreshold, Key: 3, Value: 50},
		{Kind: StandingTopK, K: 3, Keys: []uint64{1, 2, 3, 4, 5}},
	}); err != nil {
		t.Fatal(err)
	}

	const writers, rounds, batch = 4, 120, 64
	var wg sync.WaitGroup
	var wrote [writers]uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				evs := make([]Event, batch)
				for i := range evs {
					evs[i] = Event{Key: rng.Uint64() % 128, Tick: Tick(r + 1), N: 1}
				}
				eng.AddBatch(evs)
				wrote[w] += batch
				if r%16 == 9 {
					eng.Advance(Tick(r + 1))
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			var st DeltaState
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch {
				case g == 0 && i%3 == 0:
					payload, cur, full, err := eng.DeltaSnapshot(st.Cursor())
					if err != nil {
						t.Errorf("delta pull: %v", err)
						return
					}
					if err := st.Apply(payload, cur, full); err != nil {
						t.Errorf("delta apply: %v", err)
						return
					}
				case i%2 == 0:
					eng.Estimate(uint64(i%128), 1000)
				default:
					if _, err := eng.QueryBatch(QueryBatch{Keys: []uint64{1, 2, 3}, Range: 1000}); err != nil {
						t.Errorf("query batch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	eng.Flush()

	var total uint64
	for _, n := range wrote {
		total += n
	}
	if got := eng.Count(); got != total {
		t.Fatalf("final count %d, want %d", got, total)
	}
	// A final pull must reconstruct the settled engine byte-identically.
	var st DeltaState
	payload, cur, full, err := eng.DeltaSnapshot(st.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	got, err := st.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), eng.Marshal()) {
		t.Fatal("delta reconstruction diverged from async engine")
	}
}
