package ecmsketch

import (
	"bytes"
	"testing"
)

// TestShardedDeltaReconstructsSnapshot: a receiver that baselines once and
// then only applies stripe deltas materializes state byte-identical to the
// engine's own full Snapshot at every cursor, with unchanged stripes
// shipping zero bytes.
func TestShardedDeltaReconstructsSnapshot(t *testing.T) {
	for _, algo := range []Algorithm{AlgoEH, AlgoDW} {
		p := Params{Epsilon: 0.1, Delta: 0.1, WindowLength: 10000, Seed: 5, Algorithm: algo}
		if algo == AlgoDW {
			p.UpperBound = 1 << 16
		}
		sh, err := NewSharded(ShardedConfig{Params: p, Shards: 8})
		if err != nil {
			t.Fatal(err)
		}
		var st DeltaState
		tick := Tick(0)
		var sawEmptyDelta, sawSmallDelta bool
		var fullLen int
		for round := 0; round < 12; round++ {
			switch {
			case round%4 == 2:
				tick += 500
				sh.Advance(tick) // clock-only round: expect a near-empty delta
			default:
				var evs []Event
				for k := 0; k < 3; k++ {
					tick++
					evs = append(evs, Event{Key: uint64(round*31 + k), Tick: tick})
				}
				sh.AddBatch(evs)
			}
			payload, cur, full, err := sh.DeltaSnapshot(st.Cursor())
			if err != nil {
				t.Fatalf("%v round %d: %v", algo, round, err)
			}
			if round == 0 {
				if !full {
					t.Fatalf("%v: bootstrap pull not full", algo)
				}
				fullLen = len(payload)
			} else {
				if full {
					t.Fatalf("%v round %d: expected delta", algo, round)
				}
				if len(payload) < 64 {
					sawEmptyDelta = true
				}
				if len(payload)*3 < fullLen {
					sawSmallDelta = true
				}
			}
			if err := st.Apply(payload, cur, full); err != nil {
				t.Fatalf("%v round %d: apply: %v", algo, round, err)
			}
			got, err := st.Materialize()
			if err != nil {
				t.Fatalf("%v round %d: materialize: %v", algo, round, err)
			}
			want, err := sh.Snapshot()
			if err != nil {
				t.Fatalf("%v round %d: snapshot: %v", algo, round, err)
			}
			if !bytes.Equal(got.Marshal(), want.Marshal()) {
				t.Fatalf("%v round %d: delta reconstruction diverged from full snapshot", algo, round)
			}
		}
		if !sawEmptyDelta {
			t.Errorf("%v: clock-only rounds never produced a near-empty delta", algo)
		}
		if !sawSmallDelta {
			t.Errorf("%v: sparse rounds never produced a small delta", algo)
		}
	}
}
