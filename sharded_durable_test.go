package ecmsketch

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// feedDurableWorkload drives one deterministic mixed workload — batches with
// multiplicities (including the 0-means-1 case), sync/async single arrivals
// (including below-clock ticks, exercising the clamping contract), and
// explicit clock advances — so recovery is tested against every logged
// record shape.
func feedDurableWorkload(sh *Sharded, rounds int) {
	tick := uint64(100)
	var evs []Event
	for r := 0; r < rounds; r++ {
		evs = evs[:0]
		for e := 0; e < 200; e++ {
			tick += uint64(e % 3)
			evs = append(evs, Event{Key: uint64((r*131 + e*17) % 512), Tick: tick, N: uint64(e % 4)})
		}
		sh.AddBatch(evs)
		sh.AddN(uint64(r*7+3), tick+1, uint64(r%3))
		sh.AddN(uint64(r), tick-50, 1) // below the engine clock: must clamp
		if r%3 == 2 {
			tick += 40
			sh.Advance(tick)
		}
	}
}

// settleAndCompare settles both engines to a common clock and requires every
// stripe to be byte-identical, version vectors included — the recovery
// contract: a restart reproduces exactly the state a never-crashed engine
// holds after the same applied prefix.
func settleAndCompare(t *testing.T, got, want *Sharded) {
	t.Helper()
	if len(got.shards) != len(want.shards) {
		t.Fatalf("stripe count: %d vs %d", len(got.shards), len(want.shards))
	}
	settle := got.Now()
	if n := want.Now(); n > settle {
		settle = n
	}
	got.Advance(settle)
	want.Advance(settle)
	got.Flush()
	want.Flush()
	for i := range got.shards {
		g, w := &got.shards[i], &want.shards[i]
		g.mu.Lock()
		gEnc := g.sk.Marshal()
		gVer, gVers := g.sk.VersionVector()
		g.mu.Unlock()
		w.mu.Lock()
		wEnc := w.sk.Marshal()
		wVer, wVers := w.sk.VersionVector()
		w.mu.Unlock()
		if !bytes.Equal(gEnc, wEnc) {
			t.Fatalf("stripe %d: recovered arena differs (%d vs %d bytes)", i, len(gEnc), len(wEnc))
		}
		if gVer != wVer {
			t.Fatalf("stripe %d: version %d want %d", i, gVer, wVer)
		}
		if len(gVers) != len(wVers) {
			t.Fatalf("stripe %d: version vector length %d want %d", i, len(gVers), len(wVers))
		}
		for j := range gVers {
			if gVers[j] != wVers[j] {
				t.Fatalf("stripe %d cell %d: version %d want %d", i, j, gVers[j], wVers[j])
			}
		}
	}
	if gc, wc := got.Count(), want.Count(); gc != wc {
		t.Fatalf("count: %d want %d", gc, wc)
	}
}

// TestDurableRecoverByteIdentical is the crash matrix: for every counter
// algorithm, sync and async ingest, and one- and multi-stripe layouts, an
// engine killed abruptly (after a durability barrier) recovers from
// snapshot + WAL replay to state byte-identical to a reference engine fed
// the same prefix — same epoch, same arenas, same version vectors.
func TestDurableRecoverByteIdentical(t *testing.T) {
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW} {
		for _, async := range []bool{false, true} {
			for _, shards := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v_async=%v_shards=%d", algo, async, shards), func(t *testing.T) {
					p := parallelShardedParams(algo)
					store := NewMemStore()
					mk := func(dc *DurabilityConfig) *Sharded {
						sh, err := NewSharded(ShardedConfig{Params: p, Shards: shards, Async: async, Durability: dc})
						if err != nil {
							t.Fatalf("NewSharded: %v", err)
						}
						return sh
					}
					a := mk(&DurabilityConfig{Store: store})
					ref := mk(nil)
					defer ref.Close()

					feedDurableWorkload(a, 4)
					feedDurableWorkload(ref, 4)
					// A mid-stream checkpoint rotates the WAL, so recovery
					// spans snapshot + the successor segment.
					if err := a.Checkpoint(); err != nil {
						t.Fatalf("Checkpoint: %v", err)
					}
					feedDurableWorkload(a, 3)
					feedDurableWorkload(ref, 3)
					a.Flush() // durability barrier: everything above is applied and fsynced

					epoch := a.epoch
					if err := a.CloseAbrupt(); err != nil {
						t.Fatalf("CloseAbrupt: %v", err)
					}

					b := mk(&DurabilityConfig{Store: store})
					defer b.Close()
					st := b.DurabilityStats()
					if !st.Recovered {
						t.Fatal("recovery did not restore prior state")
					}
					if st.ReplayedRecords == 0 {
						t.Fatal("expected WAL records to replay after abrupt close")
					}
					if b.epoch != epoch {
						t.Fatalf("epoch changed across restart: %x want %x", b.epoch, epoch)
					}
					settleAndCompare(t, b, ref)
				})
			}
		}
	}
}

// TestDurableCursorSurvivesRestart pins the point of the whole subsystem: a
// puller's delta cursor taken before a restart is still recognized after
// it — the engine serves an incremental delta, not a re-baselining full
// snapshot, and the delta reconstructs the exact merged state.
func TestDurableCursorSurvivesRestart(t *testing.T) {
	for _, clean := range []bool{true, false} {
		t.Run(fmt.Sprintf("clean=%v", clean), func(t *testing.T) {
			p := parallelShardedParams(AlgoEH)
			store := NewMemStore()
			a, err := NewSharded(ShardedConfig{Params: p, Shards: 4,
				Durability: &DurabilityConfig{Store: store}})
			if err != nil {
				t.Fatal(err)
			}
			feedDurableWorkload(a, 3)

			var puller DeltaState
			payload, cur, full, err := a.DeltaSnapshot(puller.Cursor())
			if err != nil || !full {
				t.Fatalf("bootstrap pull: full=%v err=%v", full, err)
			}
			if err := puller.Apply(payload, cur, full); err != nil {
				t.Fatalf("apply baseline: %v", err)
			}

			feedDurableWorkload(a, 2)
			if clean {
				if err := a.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
			} else {
				a.Flush()
				a.CloseAbrupt()
			}

			b, err := NewSharded(ShardedConfig{Params: p, Shards: 4,
				Durability: &DurabilityConfig{Store: store}})
			if err != nil {
				t.Fatal(err)
			}
			defer b.Close()
			st := b.DurabilityStats()
			if !st.Recovered {
				t.Fatal("restart did not recover")
			}
			if clean && st.ReplayedRecords != 0 {
				t.Fatalf("clean shutdown replayed %d records; the final checkpoint should cover everything", st.ReplayedRecords)
			}

			payload, cur, full, err = b.DeltaSnapshot(puller.Cursor())
			if err != nil {
				t.Fatalf("post-restart pull: %v", err)
			}
			if full {
				t.Fatal("post-restart pull re-baselined: the pre-restart cursor was not honored")
			}
			if err := puller.Apply(payload, cur, full); err != nil {
				t.Fatalf("apply post-restart delta: %v", err)
			}
			got, err := puller.Materialize()
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			want, err := b.Snapshot()
			if err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			if !bytes.Equal(got.Marshal(), want.Marshal()) {
				t.Fatal("delta applied across restart diverged from the engine's merged state")
			}
		})
	}
}

// TestDurableMidStreamCrash kills an async engine with the pipeline full and
// nothing flushed: recovery must land on a consistent applied prefix (never
// corrupt, never over-counting), keep the epoch, and still serve a
// pre-crash cursor a cleanly applicable response.
func TestDurableMidStreamCrash(t *testing.T) {
	p := parallelShardedParams(AlgoEH)
	store := NewMemStore()
	a, err := NewSharded(ShardedConfig{Params: p, Shards: 4, Async: true,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	var puller DeltaState
	payload, cur, full, err := a.DeltaSnapshot(puller.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if err := puller.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}

	var fed uint64
	evs := make([]Event, 0, 64)
	for r := 0; r < 200; r++ {
		evs = evs[:0]
		for e := 0; e < 64; e++ {
			evs = append(evs, Event{Key: uint64(r*64 + e), Tick: uint64(r + 1), N: 1})
			fed++
		}
		a.AddBatch(evs)
	}
	epoch := a.epoch
	a.CloseAbrupt() // no flush: pending pipeline work is allowed to vanish

	b, err := NewSharded(ShardedConfig{Params: p, Shards: 4, Async: true,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.epoch != epoch {
		t.Fatalf("epoch changed: %x want %x", b.epoch, epoch)
	}
	if got := b.Count(); got > fed {
		t.Fatalf("recovered count %d exceeds fed %d", got, fed)
	}
	// Stripe count caches must agree with the recovered sketches.
	var sum uint64
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		if c := s.sk.Count(); c != s.count.Load() {
			s.mu.Unlock()
			t.Fatalf("stripe %d count cache %d, sketch %d", i, s.count.Load(), c)
		} else {
			sum += c
		}
		s.mu.Unlock()
	}
	if sum != b.Count() {
		t.Fatalf("count sum %d vs Count() %d", sum, b.Count())
	}

	payload, cur, full, err = b.DeltaSnapshot(puller.Cursor())
	if err != nil {
		t.Fatalf("post-crash pull: %v", err)
	}
	if full {
		t.Fatal("pre-crash cursor was not honored after mid-stream crash")
	}
	if err := puller.Apply(payload, cur, full); err != nil {
		t.Fatalf("apply: %v", err)
	}
	got, err := puller.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), want.Marshal()) {
		t.Fatal("post-crash delta diverged from merged state")
	}
}

// TestDurableTornWALTail garbages the tail of the active on-disk segment —
// the torn-write crash shape — and requires recovery to truncate it cleanly
// and match a reference engine fed the intact prefix.
func TestDurableTornWALTail(t *testing.T) {
	dir := t.TempDir()
	p := parallelShardedParams(AlgoDW)
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSharded(ShardedConfig{Params: p, Shards: 2,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSharded(ShardedConfig{Params: p, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	feedDurableWorkload(a, 3)
	feedDurableWorkload(ref, 3)
	a.Flush()
	epoch := a.epoch
	a.CloseAbrupt()

	// Tear the tail: half a frame header, then garbage.
	f, err := os.OpenFile(filepath.Join(dir, "wal-1"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x99}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, err := NewSharded(ShardedConfig{Params: p, Shards: 2,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !b.DurabilityStats().Recovered {
		t.Fatal("torn tail must not discard the intact prefix")
	}
	if b.epoch != epoch {
		t.Fatalf("epoch changed: %x want %x", b.epoch, epoch)
	}
	settleAndCompare(t, b, ref)
}

// TestDurableCorruptSnapshotDiscardsToFreshEpoch flips one byte of the
// snapshot blob: recovery must refuse the whole durable state and start a
// fresh epoch, so a stale cursor gets a full re-baseline — never a delta
// against state that cannot be trusted.
func TestDurableCorruptSnapshotDiscardsToFreshEpoch(t *testing.T) {
	dir := t.TempDir()
	p := parallelShardedParams(AlgoEH)
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSharded(ShardedConfig{Params: p, Shards: 2,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	feedDurableWorkload(a, 2)
	var puller DeltaState
	payload, cur, full, err := a.DeltaSnapshot(puller.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if err := puller.Apply(payload, cur, full); err != nil {
		t.Fatal(err)
	}
	epoch := a.epoch
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	blobPath := filepath.Join(dir, "snapshot")
	blob, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(blobPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := NewSharded(ShardedConfig{Params: p, Shards: 2,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	st := b.DurabilityStats()
	if st.Recovered {
		t.Fatal("corrupt snapshot must not recover")
	}
	if b.epoch == epoch {
		t.Fatal("corrupt snapshot must mint a fresh epoch")
	}
	if b.Count() != 0 {
		t.Fatalf("fresh engine has count %d", b.Count())
	}
	_, _, full, err = b.DeltaSnapshot(puller.Cursor())
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Fatal("stale cursor against a fresh epoch must re-baseline")
	}
}

// TestDurableForeignStateDiscarded reopens a store written by a differently
// configured engine: the fingerprint mismatch must discard it (fresh epoch,
// empty state) rather than reinterpret arenas of the wrong shape.
func TestDurableForeignStateDiscarded(t *testing.T) {
	store := NewMemStore()
	p := parallelShardedParams(AlgoEH)
	a, err := NewSharded(ShardedConfig{Params: p, Shards: 2,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	feedDurableWorkload(a, 2)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	p2 := p
	p2.Width = 512 // different arena shape, different fingerprint
	b, err := NewSharded(ShardedConfig{Params: p2, Shards: 2,
		Durability: &DurabilityConfig{Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.DurabilityStats().Recovered {
		t.Fatal("foreign state must be discarded")
	}
	if b.Count() != 0 {
		t.Fatalf("foreign recovery left count %d", b.Count())
	}
}

// TestDurableStatsBlock sanity-checks the observability fields /v1/stats
// exposes: disabled engines report zero-values, durable engines report the
// checkpoint and WAL counters monitoring depends on.
func TestDurableStatsBlock(t *testing.T) {
	plain, err := NewSharded(ShardedConfig{Params: parallelShardedParams(AlgoEH), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if st := plain.DurabilityStats(); st.Enabled || st.WALRecords != 0 {
		t.Fatalf("plain engine reports durability: %+v", st)
	}
	if err := plain.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on a plain engine must error")
	}

	sh, err := NewSharded(ShardedConfig{Params: parallelShardedParams(AlgoEH), Shards: 2,
		Durability: &DurabilityConfig{Store: NewMemStore()}})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	feedDurableWorkload(sh, 1)
	sh.Flush()
	st := sh.DurabilityStats()
	if !st.Enabled || st.Epoch == 0 || st.Generation != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.WALRecords == 0 || st.WALBytes == 0 {
		t.Fatalf("ingest logged nothing: %+v", st)
	}
	if st.LastFsyncNs < 0 {
		t.Fatalf("bad fsync latency: %+v", st)
	}
	if err := sh.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st = sh.DurabilityStats()
	if st.Generation != 2 {
		t.Fatalf("checkpoint did not rotate: %+v", st)
	}
	if st.WALRecords != 0 {
		t.Fatalf("rotation did not reset segment counters: %+v", st)
	}
	if st.LastSnapshotTick == 0 || st.LastSnapshotUnixMs == 0 {
		t.Fatalf("checkpoint left snapshot stamps zero: %+v", st)
	}
}
