package ecmsketch

import (
	"bytes"
	"testing"
)

// parallelShardedParams sizes the array so the merge worker pool engages
// (512 cells clears the per-worker floor for several workers).
func parallelShardedParams(algo Algorithm) Params {
	return Params{
		Epsilon: 0.1, Delta: 0.1, Width: 256, Depth: 2,
		WindowLength: 4096, Seed: 7, Algorithm: algo, UpperBound: 1 << 16,
	}
}

func newParallelSharded(t *testing.T, algo Algorithm) *Sharded {
	t.Helper()
	sh, err := NewSharded(ShardedConfig{Params: parallelShardedParams(algo), Shards: 8})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	t.Cleanup(func() { sh.Close() })
	return sh
}

func feedParallelSharded(sh *Sharded, rounds int) {
	var events []Event
	for r := 0; r < rounds; r++ {
		events = events[:0]
		for e := 0; e < 500; e++ {
			events = append(events, Event{
				Key:  uint64(r*131+e*17) % 4096,
				Tick: uint64(r*50 + e/10 + 1),
			})
		}
		sh.AddBatch(events)
	}
}

// dropViewCache discards the published view and the per-stripe snapshot
// cache, forcing the next global query to rebuild every stripe from
// scratch — the hook that lets one engine state be rebuilt under both the
// sequential and the parallel path.
func dropViewCache(sh *Sharded) {
	sh.rebuild.Lock()
	sh.rebuild.parts = nil
	sh.rebuild.versions = nil
	sh.view.Store(nil)
	sh.rebuild.Unlock()
}

// TestShardedParallelRebuildByteIdentical pins the parallel view rebuild to
// the sequential one: rebuilding the very same engine state under a 1-worker
// and an 8-worker pool must publish byte-identical merged views, for every
// counter algorithm, across successive churn rounds.
func TestShardedParallelRebuildByteIdentical(t *testing.T) {
	defer SetMergeParallelism(0)
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW} {
		sh := newParallelSharded(t, algo)
		for round := 1; round <= 3; round++ {
			feedParallelSharded(sh, 2*round)

			SetMergeParallelism(1)
			dropViewCache(sh)
			seq := sh.Marshal()
			if seq == nil {
				t.Fatalf("algo %v round %d: sequential Marshal failed", algo, round)
			}

			SetMergeParallelism(8)
			dropViewCache(sh)
			par := sh.Marshal()
			if par == nil {
				t.Fatalf("algo %v round %d: parallel Marshal failed", algo, round)
			}
			if !bytes.Equal(seq, par) {
				t.Fatalf("algo %v round %d: parallel rebuild differs from sequential (%d vs %d bytes)",
					algo, round, len(par), len(seq))
			}
		}
	}
}

// TestShardedQueryDirectMatchesStripes pins the zero-merge read path: every
// direct answer must equal the engine's stripe-routed Estimate for the same
// key and range (the existing single-key zero-merge read), with no view
// rebuild triggered, Range 0 resolved to the window length, and aggregate
// requests rejected.
func TestShardedQueryDirectMatchesStripes(t *testing.T) {
	for _, algo := range []Algorithm{AlgoEH, AlgoDW, AlgoRW} {
		sh := newParallelSharded(t, algo)
		feedParallelSharded(sh, 4)

		keys := make([]uint64, 64)
		for i := range keys {
			keys[i] = uint64(i * 53)
		}
		rebuilds := sh.ViewRebuilds()

		res, err := sh.QueryDirect(QueryBatch{Keys: keys, Range: 1000})
		if err != nil {
			t.Fatalf("algo %v: QueryDirect: %v", algo, err)
		}
		if res.Range != 1000 {
			t.Fatalf("algo %v: resolved range %d, want 1000", algo, res.Range)
		}
		for i, key := range keys {
			if want := sh.Estimate(key, 1000); res.Estimates[i] != want {
				t.Fatalf("algo %v key %d: direct %v != stripe Estimate %v", algo, key, res.Estimates[i], want)
			}
		}

		// Range 0 resolves to the window length, like QueryBatch.
		res0, err := sh.QueryDirect(QueryBatch{Keys: keys[:4]})
		if err != nil {
			t.Fatalf("algo %v: QueryDirect(range 0): %v", algo, err)
		}
		if res0.Range != sh.Params().WindowLength {
			t.Fatalf("algo %v: range 0 resolved to %d, want window %d", algo, res0.Range, sh.Params().WindowLength)
		}
		for i, key := range keys[:4] {
			if want := sh.Estimate(key, sh.Params().WindowLength); res0.Estimates[i] != want {
				t.Fatalf("algo %v key %d: whole-window direct %v != Estimate %v", algo, key, res0.Estimates[i], want)
			}
		}

		if got := sh.ViewRebuilds(); got != rebuilds {
			t.Fatalf("algo %v: direct reads triggered %d view rebuilds", algo, got-rebuilds)
		}
		if _, err := sh.QueryDirect(QueryBatch{Keys: keys[:1], Total: true}); err == nil {
			t.Fatalf("algo %v: QueryDirect accepted a Total aggregate", algo)
		}
		if _, err := sh.QueryDirect(QueryBatch{Keys: keys[:1], SelfJoin: true}); err == nil {
			t.Fatalf("algo %v: QueryDirect accepted a SelfJoin aggregate", algo)
		}
	}
}

// TestQueryDirectSingleSketchCoincides pins the DirectQuerier contract on
// the single-sketch front ends: direct and batched point answers coincide
// (a lone sketch has no stripes), and aggregates are rejected identically.
func TestQueryDirectSingleSketchCoincides(t *testing.T) {
	sk, err := New(parallelShardedParams(AlgoEH))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for e := 0; e < 2000; e++ {
		sk.Add(uint64(e%97), uint64(e/10+1))
	}
	ss := WrapSafe(sk)
	keys := []uint64{1, 5, 42, 96, 1000}
	q := QueryBatch{Keys: keys, Range: 150}
	batch, err := ss.QueryBatch(q)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	direct, err := ss.QueryDirect(q)
	if err != nil {
		t.Fatalf("QueryDirect: %v", err)
	}
	for i := range keys {
		if batch.Estimates[i] != direct.Estimates[i] {
			t.Fatalf("key %d: direct %v != batch %v", keys[i], direct.Estimates[i], batch.Estimates[i])
		}
	}
	if _, err := ss.QueryDirect(QueryBatch{Keys: keys, Total: true}); err == nil {
		t.Fatal("SafeSketch.QueryDirect accepted a Total aggregate")
	}
}

// TestShardedRebuildStats checks the rebuild timing surface: after a forced
// full rebuild the last build's wall time is recorded and the worker count
// reflects the configured cap.
func TestShardedRebuildStats(t *testing.T) {
	defer SetMergeParallelism(0)
	sh := newParallelSharded(t, AlgoEH)
	feedParallelSharded(sh, 4)

	SetMergeParallelism(1)
	dropViewCache(sh)
	if sh.Marshal() == nil {
		t.Fatal("Marshal failed")
	}
	ns, workers := sh.RebuildStats()
	if ns <= 0 {
		t.Fatalf("rebuild ns = %d, want > 0", ns)
	}
	if workers != 1 {
		t.Fatalf("workers = %d under a sequential cap, want 1", workers)
	}

	SetMergeParallelism(4)
	dropViewCache(sh)
	if sh.Marshal() == nil {
		t.Fatal("Marshal failed")
	}
	if _, workers = sh.RebuildStats(); workers < 1 || workers > 4 {
		t.Fatalf("workers = %d under a 4-worker cap, want 1..4", workers)
	}
}
