package ecmsketch_test

import (
	"testing"
	"time"

	"ecmsketch"
)

// TestShardedBackgroundRefresher pins the RefreshInterval knob: after
// writes invalidate the merged view, the background refresher rebuilds it
// with no reader tripping the rebuild — ViewRebuilds climbs while no global
// query runs.
func TestShardedBackgroundRefresher(t *testing.T) {
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
		Params:          shardedParams(),
		Shards:          4,
		MergeTTL:        time.Millisecond,
		RefreshInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()

	batch := make([]ecmsketch.Event, 256)
	for i := range batch {
		batch[i] = ecmsketch.Event{Key: uint64(i % 64), Tick: uint64(i/8 + 1)}
	}
	sh.AddBatch(batch)

	// The refresher builds even the first view eagerly; wait for it, then
	// mutate and wait for a background rebuild — all without issuing a
	// single global query ourselves.
	deadline := time.Now().Add(5 * time.Second)
	for sh.ViewRebuilds() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sh.ViewRebuilds() == 0 {
		t.Fatal("refresher never built the initial view")
	}
	r0 := sh.ViewRebuilds()
	for i := range batch {
		batch[i].Tick += 100
	}
	sh.AddBatch(batch)
	for sh.ViewRebuilds() == r0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sh.ViewRebuilds() == r0 {
		t.Fatal("refresher never rebuilt after writes invalidated the view")
	}

	// Readers see the refreshed view (and may themselves trigger further
	// rebuilds; the point above was that none was needed to get one).
	if got := sh.EstimateTotal(10000); got < 500 || got > 550 {
		t.Errorf("EstimateTotal = %v, want ≈512", got)
	}
}

// TestShardedCloseIdempotent pins Close semantics: repeated closes are
// no-ops, engines without a refresher need none, and a closed engine keeps
// answering queries.
func TestShardedCloseIdempotent(t *testing.T) {
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
		Params: shardedParams(), Shards: 2, RefreshInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh.Add(1, 10)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sh.Estimate(1, 10000); got != 1 {
		t.Errorf("estimate after Close = %v, want 1", got)
	}

	plain, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: shardedParams()})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Errorf("Close on refresher-less engine: %v", err)
	}
}

// TestShardedNegativeRefreshInterval pins construction validation.
func TestShardedNegativeRefreshInterval(t *testing.T) {
	_, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{
		Params: shardedParams(), RefreshInterval: -time.Second,
	})
	if err == nil {
		t.Fatal("negative RefreshInterval accepted")
	}
}
