package ecmsketch_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ecmsketch"
)

func shardedParams() ecmsketch.Params {
	return ecmsketch.Params{Epsilon: 0.05, Delta: 0.01, WindowLength: 10000, Seed: 42}
}

func TestShardedValidation(t *testing.T) {
	p := shardedParams()
	if _, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	bad := p
	bad.Epsilon = 0
	if _, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: bad}); err == nil {
		t.Error("invalid params accepted")
	}
	cb := p
	cb.Model = ecmsketch.CountBased
	if _, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: cb}); err == nil {
		t.Error("count-based windows accepted (semantics do not survive partitioning)")
	}
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != 8 {
		t.Errorf("Shards() = %d, want 8 (rounded up to a power of two)", sh.Shards())
	}
	def, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if def.Shards() < 1 {
		t.Errorf("default Shards() = %d", def.Shards())
	}
}

// TestShardedEquivalence feeds the identical stream to a Sharded engine and
// a single sketch, and checks that both answer point, total and self-join
// queries within the paper's bounds — point queries within the ε·‖a_r‖₁
// guarantee of Theorem 1 (sharded point queries touch one stripe, so they
// pay no merge error), global queries within the inflated window error of
// the Theorem 4 merge (ε_sw” = 2ε_sw + ε_sw² per counter, which the total
// ε budget of the test's tolerance comfortably covers).
func TestShardedEquivalence(t *testing.T) {
	p := shardedParams()
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	single, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	oracle := ecmsketch.NewOracle(p.WindowLength)

	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 4096)
	const events = 50000
	var now ecmsketch.Tick
	batch := make([]ecmsketch.Event, 0, 256)
	for i := 0; i < events; i++ {
		now++
		k := zipf.Uint64()
		batch = append(batch, ecmsketch.Event{Key: k, Tick: now})
		single.Add(k, now)
		oracle.Add(k, now)
		if len(batch) == cap(batch) {
			sh.AddBatch(batch)
			batch = batch[:0]
		}
	}
	sh.AddBatch(batch)

	if sh.Count() != single.Count() {
		t.Fatalf("Count: sharded %d, single %d", sh.Count(), single.Count())
	}
	if sh.Now() != single.Now() {
		t.Fatalf("Now: sharded %d, single %d", sh.Now(), single.Now())
	}

	for _, r := range []ecmsketch.Tick{p.WindowLength, p.WindowLength / 4} {
		total := float64(oracle.Total(r))
		bound := p.Epsilon * total
		for key := uint64(0); key < 50; key++ {
			exact := float64(oracle.Freq(key, r))
			got := sh.Estimate(key, r)
			// Unlike a plain Count-Min, the window counters carry two-sided
			// ε_sw relative error, so small underestimates are legitimate;
			// overestimates are bounded by ε·‖a_r‖₁ plus the window error.
			if got < exact*(1-p.Epsilon)-1e-9 {
				t.Errorf("r=%d key=%d: sharded estimate %v undershoots exact %v beyond ε", r, key, got, exact)
			}
			if got-exact > bound+p.Epsilon*exact {
				t.Errorf("r=%d key=%d: sharded estimate %v exceeds exact %v by more than ε·total (%v)", r, key, got, exact, bound)
			}
		}
		// Global queries answer from the Theorem 4 merged view: compare
		// against the single sketch over the same stream, allowing the
		// merge's window-error inflation on top of the base budget.
		tol := 3 * p.Epsilon
		st, tt := sh.EstimateTotal(r), single.EstimateTotal(r)
		if tt > 0 && math.Abs(st-tt)/tt > tol {
			t.Errorf("r=%d: EstimateTotal sharded %v vs single %v (rel diff > %v)", r, st, tt, tol)
		}
		ssj, tsj := sh.SelfJoin(r), single.SelfJoin(r)
		// Self-join estimates square the per-counter values, so the merge
		// inflation doubles: (1+2ε)² - 1 ≈ 4ε slack plus the base budget.
		sjTol := 7 * p.Epsilon
		if tsj > 0 && math.Abs(ssj-tsj)/tsj > sjTol {
			t.Errorf("r=%d: SelfJoin sharded %v vs single %v (rel diff > %v)", r, ssj, tsj, sjTol)
		}
	}

	// The merged snapshot is a plain, compatible sketch: it can be merged
	// again with the single sketch (two "sites") and queried.
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	both, err := ecmsketch.Merge(snap, single)
	if err != nil {
		t.Fatalf("merging sharded snapshot with single sketch: %v", err)
	}
	if both.Count() != sh.Count()+single.Count() {
		t.Errorf("merged count %d, want %d", both.Count(), sh.Count()+single.Count())
	}
}

// TestShardedInnerProduct checks the merged view answers inner-product
// queries against a compatible external sketch.
func TestShardedInnerProduct(t *testing.T) {
	p := shardedParams()
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	other, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := ecmsketch.Tick(1); i <= 1000; i++ {
		sh.Add(i%10, i)
		other.Add(i%10, i)
	}
	ip, err := sh.InnerProduct(other, p.WindowLength)
	if err != nil {
		t.Fatal(err)
	}
	// Both streams hold 100 arrivals of each of 10 keys: true ⊙ = 10·100².
	if ip < 100000*0.9 || ip > 100000*1.5 {
		t.Errorf("InnerProduct = %v, want ≈100000", ip)
	}
}

// TestShardedMergedViewCache verifies the TTL cache: with a long TTL, a
// global query after new writes may serve the stale view; after the
// version-based path (TTL 0), it must always be fresh.
func TestShardedMergedViewCache(t *testing.T) {
	p := shardedParams()
	fresh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	fresh.Add(1, 1)
	if got := fresh.EstimateTotal(p.WindowLength); got < 1 {
		t.Errorf("total before = %v, want ≥1", got)
	}
	fresh.AddN(1, 2, 99)
	if got := fresh.EstimateTotal(p.WindowLength); got < 100 {
		t.Errorf("TTL=0 must re-merge after writes: total = %v, want ≥100", got)
	}

	cached, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 2, MergeTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cached.Add(1, 1)
	if got := cached.EstimateTotal(p.WindowLength); got < 1 {
		t.Errorf("total before = %v, want ≥1", got)
	}
	cached.AddN(1, 2, 99)
	if got := cached.EstimateTotal(p.WindowLength); got >= 100 {
		t.Errorf("hour-long TTL must serve the cached view: total = %v, want <100", got)
	}
}

// TestShardedConcurrentStress hammers a Sharded engine with concurrent
// batched writers and point/global readers; run under -race this is the
// engine's data-race certificate. Counts must come out exact.
func TestShardedConcurrentStress(t *testing.T) {
	p := shardedParams()
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 4, MergeTTL: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			batch := make([]ecmsketch.Event, 0, 64)
			for i := 1; i <= perG; i++ {
				key := uint64(rng.Intn(512))
				batch = append(batch, ecmsketch.Event{Key: key, Tick: ecmsketch.Tick(i)})
				if len(batch) == cap(batch) {
					sh.AddBatch(batch)
					batch = batch[:0]
				}
				switch {
				case i%97 == 0:
					sh.Estimate(key, p.WindowLength)
				case i%151 == 0:
					if _, err := sh.QueryBatch(ecmsketch.QueryBatch{
						Keys: []uint64{key, key + 1}, Total: true, SelfJoin: true,
					}); err != nil {
						t.Errorf("goroutine %d: QueryBatch: %v", g, err)
					}
				case i%251 == 0:
					sh.SelfJoin(p.WindowLength)
				case i%509 == 0:
					sh.EstimateTotal(p.WindowLength)
					sh.Now()
				case i%701 == 0:
					// Serialization is a pure read of the frozen view;
					// concurrent pulls must not race.
					if b := sh.Marshal(); len(b) == 0 {
						t.Errorf("goroutine %d: empty Marshal", g)
					}
				}
			}
			sh.AddBatch(batch)
			if _, err := sh.Snapshot(); err != nil {
				t.Errorf("goroutine %d: snapshot: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if got := sh.Count(); got != goroutines*perG {
		t.Errorf("Count = %d, want %d", got, goroutines*perG)
	}
	// Global queries may serve a view up to MergeTTL (plus one rebuild) old;
	// wait out the TTL so the final query must rebuild and see every write.
	time.Sleep(5 * time.Millisecond)
	if got := sh.EstimateTotal(p.WindowLength); got < float64(goroutines*perG)*0.8 {
		t.Errorf("EstimateTotal = %v, want ≈%d", got, goroutines*perG)
	}
	if sh.MemoryBytes() <= 0 || sh.Width() <= 0 || sh.Depth() <= 0 {
		t.Error("degenerate engine accounting")
	}
}

// TestShardedCountStress hammers Count (and the other lock-free accounting
// reads) from dedicated readers while batched writers run. Count reads the
// per-stripe atomic caches without taking stripe locks, so under -race this
// is the certificate that the lock-free path is sound; the final sum must
// still be exact.
func TestShardedCountStress(t *testing.T) {
	p := shardedParams()
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perW = 5000
	var wg sync.WaitGroup
	done := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				c := sh.Count()
				if c < last {
					t.Errorf("Count went backwards: %d after %d", c, last)
					return
				}
				last = c
				sh.Now()
				sh.ViewRebuilds()
			}
		}()
	}
	var ww sync.WaitGroup
	for g := 0; g < writers; g++ {
		ww.Add(1)
		go func(g int) {
			defer ww.Done()
			batch := make([]ecmsketch.Event, 0, 32)
			for i := 1; i <= perW; i++ {
				batch = append(batch, ecmsketch.Event{Key: uint64(g*perW + i), Tick: ecmsketch.Tick(i)})
				if len(batch) == cap(batch) {
					sh.AddBatch(batch)
					batch = batch[:0]
				}
			}
			sh.AddBatch(batch)
		}(g)
	}
	ww.Wait()
	close(done)
	wg.Wait()
	if got := sh.Count(); got != writers*perW {
		t.Errorf("Count = %d, want %d", got, writers*perW)
	}
}

// TestQueryBatchFrontEnds pins the QueryBatch contract on every local front
// end: answers align with the request's key order, a zero Range resolves to
// the whole window, and the combined total+self-join sweep is bit-identical
// to the separate single-query calls.
func TestQueryBatchFrontEnds(t *testing.T) {
	p := shardedParams()
	keys := []uint64{1, 2, 3, 500, 9999}
	stream := func(ing ecmsketch.Ingestor) {
		batch := make([]ecmsketch.Event, 0, 128)
		for i := 1; i <= 20000; i++ {
			batch = append(batch, ecmsketch.Event{Key: uint64(i % 700), Tick: ecmsketch.Tick(i)})
			if len(batch) == cap(batch) {
				ing.AddBatch(batch)
				batch = batch[:0]
			}
		}
		ing.AddBatch(batch)
	}

	sk, err := ecmsketch.New(p)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := ecmsketch.NewSafe(p)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []ecmsketch.Engine{sk, ss, sh} {
		stream(eng)
		res, err := eng.QueryBatch(ecmsketch.QueryBatch{Keys: keys, Total: true, SelfJoin: true})
		if err != nil {
			t.Fatalf("%T: QueryBatch: %v", eng, err)
		}
		if len(res.Estimates) != len(keys) {
			t.Fatalf("%T: %d estimates for %d keys", eng, len(res.Estimates), len(keys))
		}
		if res.Range != p.WindowLength {
			t.Errorf("%T: zero Range resolved to %d, want window %d", eng, res.Range, p.WindowLength)
		}
		if res.Now != 20000 {
			t.Errorf("%T: Now = %d, want 20000", eng, res.Now)
		}
		// The batch aggregates must match the engine's own single-query
		// answers bit for bit (for Sharded both come from the merged view).
		if want := eng.EstimateTotal(p.WindowLength); res.Total != want {
			t.Errorf("%T: batch Total %v != EstimateTotal %v", eng, res.Total, want)
		}
		if want := eng.SelfJoin(p.WindowLength); res.SelfJoin != want {
			t.Errorf("%T: batch SelfJoin %v != SelfJoin %v", eng, res.SelfJoin, want)
		}
	}

	// Single-sketch batch point answers are exactly the Estimate answers.
	res, err := sk.QueryBatch(ecmsketch.QueryBatch{Keys: keys, Range: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if want := sk.Estimate(k, 5000); res.Estimates[i] != want {
			t.Errorf("key %d: batch estimate %v != Estimate %v", k, res.Estimates[i], want)
		}
	}
	// Sharded batch point answers come from the merged view — the price of
	// the consistent cut — and must match querying its Snapshot directly.
	snap, err := sh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	shRes, err := sh.QueryBatch(ecmsketch.QueryBatch{Keys: keys, Range: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if want := snap.Estimate(k, 5000); shRes.Estimates[i] != want {
			t.Errorf("key %d: sharded batch estimate %v != merged-view estimate %v", k, shRes.Estimates[i], want)
		}
	}
}

// TestSafeSketchConcurrentStress is the same certificate for the
// mutex-guarded front end, exercising the new AddBatch path.
func TestSafeSketchConcurrentStress(t *testing.T) {
	p := shardedParams()
	ss, err := ecmsketch.NewSafe(p)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			batch := make([]ecmsketch.Event, 0, 64)
			for i := 1; i <= perG; i++ {
				key := uint64(rng.Intn(512))
				batch = append(batch, ecmsketch.Event{Key: key, Tick: ecmsketch.Tick(i)})
				if len(batch) == cap(batch) {
					ss.AddBatch(batch)
					batch = batch[:0]
				}
				if i%97 == 0 {
					ss.Estimate(key, p.WindowLength)
					ss.SelfJoin(p.WindowLength)
				}
			}
			ss.AddBatch(batch)
		}(g)
	}
	wg.Wait()
	if got := ss.Count(); got != goroutines*perG {
		t.Errorf("Count = %d, want %d", got, goroutines*perG)
	}
	other, err := ss.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.InnerProduct(other, p.WindowLength); err != nil {
		t.Errorf("InnerProduct against own snapshot: %v", err)
	}
}

// TestEventBatchSemantics pins the Event contract shared by every
// Ingestor: slice order, multiplicity, and N==0 counting as one arrival.
func TestEventBatchSemantics(t *testing.T) {
	p := shardedParams()
	mk := func() []ecmsketch.Ingestor {
		sk, err := ecmsketch.New(p)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := ecmsketch.NewSafe(p)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		return []ecmsketch.Ingestor{sk, ss, sh}
	}
	for _, ing := range mk() {
		ing.AddBatch([]ecmsketch.Event{
			{Key: 1, Tick: 10},          // N==0 counts once
			{Key: 1, Tick: 11, N: 4},    // multiplicity
			{Key: 2, Tick: 12, N: 1},    //
			{Key: 3, Tick: 13, N: 1000}, // heavy key
		})
		q, ok := ing.(ecmsketch.Querier)
		if !ok {
			t.Fatalf("%T does not implement Querier", ing)
		}
		if got := q.Estimate(1, p.WindowLength); got < 5 {
			t.Errorf("%T: key 1 estimate %v, want ≥5", ing, got)
		}
		if got := q.Now(); got != 13 {
			t.Errorf("%T: Now = %d, want 13", ing, got)
		}
	}
}
