package ecmsketch

// White-box tests of the snapshot-based query engine behind Sharded: the
// acceptance criteria of the refactor are (a) the published merged view is
// bit-identical to a from-scratch Merge of every stripe at the same version,
// including after incremental rebuilds that reuse cached stripe snapshots,
// and (b) a reader stampede onto an expired view pays exactly one merge.

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func viewTestParams() Params {
	return Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 8192, Seed: 11}
}

// fullMergeBaseline rebuilds, from scratch, exactly what the query engine
// claims the view is: every stripe snapshotted, advanced to the engine
// clock, and merged in stripe order.
func fullMergeBaseline(t *testing.T, sh *Sharded) *Sketch {
	t.Helper()
	now := sh.now.Load()
	parts := make([]*Sketch, len(sh.shards))
	for i := range sh.shards {
		s := &sh.shards[i]
		s.mu.Lock()
		part, err := s.sk.Snapshot()
		s.mu.Unlock()
		if err != nil {
			t.Fatalf("snapshotting shard %d: %v", i, err)
		}
		if now > part.Now() {
			part.Advance(now)
		}
		parts[i] = part
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatalf("full merge: %v", err)
	}
	return merged
}

// marshalNormalized serializes an independent copy of a sketch with the
// identifier salt pinned, so two sketches with identical counter content
// encode identically (the salt only feeds auto-generated randomized-wave
// identifiers and is freshly drawn per construction).
func marshalNormalized(t *testing.T, s *Sketch) []byte {
	t.Helper()
	c, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c.SetIDSalt(0)
	return c.Marshal()
}

func feedShardedView(t *testing.T, sh *Sharded, seed int64, events int, startTick Tick) Tick {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1, 2048)
	batch := make([]Event, 0, 128)
	now := startTick
	for i := 0; i < events; i++ {
		now++
		batch = append(batch, Event{Key: zipf.Uint64(), Tick: now})
		if len(batch) == cap(batch) {
			sh.AddBatch(batch)
			batch = batch[:0]
		}
	}
	sh.AddBatch(batch)
	return now
}

// TestShardedViewBitIdentical pins the central equivalence: the view
// serving global queries is indistinguishable — same wire bytes, same
// query answers — from a full Merge of all stripes at the same version,
// both on the first build and on an incremental rebuild that re-snapshots
// only the one stripe that changed.
func TestShardedViewBitIdentical(t *testing.T) {
	p := viewTestParams()
	sh, err := NewSharded(ShardedConfig{Params: p, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	now := feedShardedView(t, sh, 1, 20000, 0)

	check := func(stage string) {
		t.Helper()
		view, err := sh.queryView()
		if err != nil {
			t.Fatalf("%s: queryView: %v", stage, err)
		}
		baseline := fullMergeBaseline(t, sh)
		if got, want := marshalNormalized(t, view), marshalNormalized(t, baseline); !bytes.Equal(got, want) {
			t.Fatalf("%s: view encoding differs from full merge (%d vs %d bytes)", stage, len(got), len(want))
		}
		for _, r := range []Tick{p.WindowLength, p.WindowLength / 3, 100} {
			if got, want := sh.SelfJoin(r), baseline.SelfJoin(r); got != want {
				t.Errorf("%s: SelfJoin(%d) = %v, want %v (bit-identical)", stage, r, got, want)
			}
			if got, want := sh.EstimateTotal(r), baseline.EstimateTotal(r); got != want {
				t.Errorf("%s: EstimateTotal(%d) = %v, want %v (bit-identical)", stage, r, got, want)
			}
		}
		res, err := sh.QueryBatch(QueryBatch{Keys: []uint64{1, 2, 3, 99, 7777}, Total: true, SelfJoin: true})
		if err != nil {
			t.Fatalf("%s: QueryBatch: %v", stage, err)
		}
		for i, key := range []uint64{1, 2, 3, 99, 7777} {
			if want := baseline.Estimate(key, p.WindowLength); res.Estimates[i] != want {
				t.Errorf("%s: batch estimate key %d = %v, want %v (bit-identical)", stage, key, res.Estimates[i], want)
			}
		}
		if want := baseline.EstimateTotal(p.WindowLength); res.Total != want {
			t.Errorf("%s: batch total = %v, want %v", stage, res.Total, want)
		}
		if want := baseline.SelfJoin(p.WindowLength); res.SelfJoin != want {
			t.Errorf("%s: batch self-join = %v, want %v", stage, res.SelfJoin, want)
		}
	}

	check("first build")
	before := sh.ViewRebuilds()

	// Mutate exactly one stripe, so the next rebuild must combine one fresh
	// snapshot with seven cached ones — the incremental path.
	sh.Add(424242, now+1)
	check("incremental rebuild (1 of 8 stripes changed)")
	if got := sh.ViewRebuilds(); got != before+1 {
		t.Errorf("rebuilds after one write burst = %d, want %d", got, before+1)
	}

	// And again after a broad write burst touching many stripes.
	feedShardedView(t, sh, 2, 5000, now+1)
	check("rebuild after broad burst")
}

// TestShardedViewFrozen asserts the published view really is immutable:
// queries against it do not move its clock, and a stripe write after the
// build does not leak into the already-published view.
func TestShardedViewFrozen(t *testing.T) {
	p := viewTestParams()
	sh, err := NewSharded(ShardedConfig{Params: p, Shards: 4, MergeTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	now := feedShardedView(t, sh, 3, 5000, 0)
	view, err := sh.queryView()
	if err != nil {
		t.Fatal(err)
	}
	if view.Now() != now {
		t.Fatalf("view clock = %d, want engine clock %d", view.Now(), now)
	}
	total := view.EstimateTotal(p.WindowLength)
	sh.AddN(7, now+10, 1000)
	if got := view.Now(); got != now {
		t.Errorf("view clock moved to %d after a write; views must be frozen", got)
	}
	if got := view.EstimateTotal(p.WindowLength); got != total {
		t.Errorf("published view changed under a write: total %v -> %v", total, got)
	}
	// Within the TTL the engine still serves that same frozen view.
	if got := sh.EstimateTotal(p.WindowLength); got != total {
		t.Errorf("cached global query = %v, want the frozen view's %v", got, total)
	}
}

// TestShardedSingleFlightRebuild is the stampede test: 16 readers hitting a
// TTL-expired view trigger exactly one merge, with every reader answered
// (from the previous view or the fresh one — never blocking behind N-1
// redundant merges).
func TestShardedSingleFlightRebuild(t *testing.T) {
	p := viewTestParams()
	const ttl = 30 * time.Millisecond
	sh, err := NewSharded(ShardedConfig{Params: p, Shards: 4, MergeTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	now := feedShardedView(t, sh, 4, 10000, 0)
	if got := sh.EstimateTotal(p.WindowLength); got <= 0 {
		t.Fatalf("priming query returned %v", got)
	}
	base := sh.ViewRebuilds()

	// Invalidate: one write moves the version sum, and the TTL lapses.
	sh.Add(5, now+1)
	time.Sleep(ttl + 10*time.Millisecond)

	const readers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				if got := sh.SelfJoin(p.WindowLength); got <= 0 {
					t.Error("reader got non-positive self-join")
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	// No further writes happened, so after the first rebuild the version
	// sums match and every later query is a cache hit: the stampede must
	// have paid exactly one merge.
	if got := sh.ViewRebuilds(); got != base+1 {
		t.Errorf("rebuilds during stampede = %d, want exactly %d", got-base, 1)
	}
}

// TestShardedStrictFreshness pins the MergeTTL == 0 contract after the
// refactor: every global query reflects every write that completed before
// the call, which means rebuilding (not stale-serving) on each version
// change.
func TestShardedStrictFreshness(t *testing.T) {
	p := viewTestParams()
	sh, err := NewSharded(ShardedConfig{Params: p, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		sh.AddN(uint64(i), Tick(i), 50)
		if got := sh.EstimateTotal(p.WindowLength); got < float64(i*50)*0.9 {
			t.Fatalf("after %d writes: total %v lags the stream (strict freshness broken)", i, got)
		}
	}
}
