package ecmsketch

import "ecmsketch/internal/standing"

// Standing queries: continuous predicates over the sliding window —
// threshold crossings, top-k membership changes, windowed rate-of-change —
// evaluated incrementally as mutations land and pushed to subscribers,
// instead of being polled for. See the internal/standing package
// documentation for the evaluation and delivery contract; ecmserver and
// ecmcoord expose the registry over POST /v1/subscribe + GET /v1/watch
// (SSE), and ecmclient.Subscribe consumes it as a typed channel.
//
// Embedders hook a registry to an engine directly:
//
//	reg := ecmsketch.NewStandingRegistry(ecmsketch.StandingConfig{Window: p.WindowLength})
//	reg.Bind(engine)          // evaluation target
//	engine.SetNotifier(reg)   // change feed
//
// and consume notifications in-process via reg.Subscribe + reg.Attach.

// StandingQuery is one continuous query; StandingKind selects the
// predicate type.
type StandingQuery = standing.Query

// StandingKind names a standing-query predicate type.
type StandingKind = standing.Kind

// Standing-query predicate kinds.
const (
	StandingThreshold = standing.KindThreshold
	StandingTopK      = standing.KindTopK
	StandingRate      = standing.KindRate
	// StandingDropped marks client-side delivery-gap markers.
	StandingDropped = standing.KindDropped
)

// Notification is one fired standing-query event.
type Notification = standing.Notification

// NotificationItem is one ranked member of a top-k notification.
type NotificationItem = standing.Item

// StandingConfig configures a StandingRegistry.
type StandingConfig = standing.Config

// StandingRegistry holds standing queries, evaluates them incrementally
// (it is the canonical Notifier for Sharded engines, and accepts a
// coordinator's changed-cell feed via RefreshTarget), and fans fired
// notifications out to attached watchers with bounded queues.
type StandingRegistry = standing.Registry

// StandingWatcher is one delivery endpoint attached to a subscription.
type StandingWatcher = standing.Watcher

// StandingSubscription is the receipt of StandingRegistry.Subscribe.
type StandingSubscription = standing.SubscriptionInfo

// NewStandingRegistry builds an empty standing-query registry.
func NewStandingRegistry(cfg StandingConfig) *StandingRegistry {
	return standing.NewRegistry(cfg)
}
