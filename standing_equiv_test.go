package ecmsketch

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ecmsketch/internal/standing"
)

// The standing-query evaluator is incremental: it re-checks only the
// predicates whose Count-Min cells intersect the batch's touched set (plus
// the advance-sensitive ones on clock moves). These tests pin its
// correctness against a brute-force oracle that re-evaluates every
// predicate against the same engine at every batch boundary: the fired
// crossings — kind, key, edge direction, value, clock — must be identical,
// on both the Sharded ingest path and the coordinator delta-apply path,
// for both deterministic engines.
//
// Prev on threshold firings is deliberately not compared: it reports the
// value at the predicate's previous *evaluation*, and skipping no-op
// evaluations is exactly what incrementality is allowed to do.

// equivFiring is one oracle-predicted (or registry-observed) crossing in a
// canonical comparable form.
type equivFiring struct {
	q      int // query index in registration order
	kind   StandingKind
	key    uint64
	rising bool
	value  float64
	prev   float64 // compared for rate only (always freshly computed there)
	now    Tick
	top    string
	inOut  string
}

func (f equivFiring) String() string {
	return fmt.Sprintf("q%d %v key=%d rising=%v value=%g prev=%g now=%d top=%s inout=%s",
		f.q, f.kind, f.key, f.rising, f.value, f.prev, f.now, f.top, f.inOut)
}

// equivOracle brute-force re-evaluates every query at every boundary,
// mirroring the registry's predicate semantics (edge detection, tie-breaks,
// membership-vs-rank rules) but none of its skipping.
type equivOracle struct {
	window  Tick
	queries []StandingQuery
	high    []bool
	members [][]NotificationItem
}

func newEquivOracle(window Tick, queries []StandingQuery) *equivOracle {
	return &equivOracle{
		window:  window,
		queries: queries,
		high:    make([]bool, len(queries)),
		members: make([][]NotificationItem, len(queries)),
	}
}

func (o *equivOracle) rangeOf(q StandingQuery, now Tick) Tick {
	rng := q.Range
	if rng == 0 {
		rng = o.window
	}
	if rng == 0 {
		rng = now
	}
	return rng
}

func (o *equivOracle) eval(t interface {
	Estimate(key uint64, r Tick) float64
	EstimateInterval(key uint64, from, to Tick) float64
	Now() Tick
}) []equivFiring {
	now := t.Now()
	var fired []equivFiring
	for i, q := range o.queries {
		rng := o.rangeOf(q, now)
		switch q.Kind {
		case StandingThreshold:
			cur := t.Estimate(q.Key, rng)
			high := cur >= q.Value
			if high != o.high[i] && high != q.Below {
				fired = append(fired, equivFiring{
					q: i, kind: q.Kind, key: q.Key, rising: high, value: cur, now: now,
				})
			}
			o.high[i] = high
		case StandingRate:
			cur := t.Estimate(q.Key, rng)
			var from, to Tick
			if now > rng {
				to = now - rng
			}
			if now > 2*rng {
				from = now - 2*rng
			}
			var prev float64
			if to > from {
				prev = t.EstimateInterval(q.Key, from, to)
			}
			high := cur > 0 && cur >= q.Factor*prev && cur >= q.Value
			if high && !o.high[i] {
				fired = append(fired, equivFiring{
					q: i, kind: q.Kind, key: q.Key, rising: true, value: cur, prev: prev, now: now,
				})
			}
			o.high[i] = high
		case StandingTopK:
			scored := make([]NotificationItem, 0, len(q.Keys))
			for _, k := range q.Keys {
				scored = append(scored, NotificationItem{Key: k, Estimate: t.Estimate(k, rng)})
			}
			sort.Slice(scored, func(a, b int) bool {
				if scored[a].Estimate != scored[b].Estimate {
					return scored[a].Estimate > scored[b].Estimate
				}
				return scored[a].Key < scored[b].Key
			})
			n := q.K
			if n > len(scored) {
				n = len(scored)
			}
			members := make([]NotificationItem, 0, n)
			for _, it := range scored[:n] {
				if it.Estimate > 0 {
					members = append(members, it)
				}
			}
			prevM := o.members[i]
			fire := len(members) != len(prevM)
			if !fire {
				for j := range members {
					if members[j].Key != prevM[j].Key {
						fire = true
						break
					}
				}
				if fire && !q.RankChanges {
					in := make(map[uint64]bool, len(members))
					for _, it := range members {
						in[it.Key] = true
					}
					same := true
					for _, it := range prevM {
						if !in[it.Key] {
							same = false
							break
						}
					}
					fire = !same
				}
			}
			if fire {
				fired = append(fired, equivFiring{
					q: i, kind: q.Kind, now: now,
					top:   topString(members),
					inOut: inOutString(members, prevM),
				})
			}
			o.members[i] = members
		}
	}
	return fired
}

func topString(items []NotificationItem) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%d:%g ", it.Key, it.Estimate)
	}
	return s
}

func inOutString(cur, prev []NotificationItem) string {
	was := make(map[uint64]bool, len(prev))
	for _, it := range prev {
		was[it.Key] = true
	}
	is := make(map[uint64]bool, len(cur))
	var entered, left []uint64
	for _, it := range cur {
		is[it.Key] = true
		if !was[it.Key] {
			entered = append(entered, it.Key)
		}
	}
	for _, it := range prev {
		if !is[it.Key] {
			left = append(left, it.Key)
		}
	}
	sort.Slice(entered, func(i, j int) bool { return entered[i] < entered[j] })
	sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
	return fmt.Sprintf("+%v -%v", entered, left)
}

// toEquivFiring canonicalizes a registry notification for comparison.
// queryIdx maps registry query IDs back to registration order.
func toEquivFiring(n Notification, queryIdx map[uint64]int) equivFiring {
	f := equivFiring{
		q:      queryIdx[n.Query],
		kind:   n.Kind,
		key:    n.Key,
		rising: n.Rising,
		value:  n.Value,
		now:    n.Now,
	}
	switch n.Kind {
	case StandingRate:
		f.prev = n.Prev
	case StandingTopK:
		f.top = topString(n.Top)
		f.inOut = fmt.Sprintf("+%v -%v", n.Entered, n.Left)
	}
	return f
}

func compareFirings(t *testing.T, label string, want, got []equivFiring) {
	t.Helper()
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: firing %d diverged:\n  oracle      %s\n  incremental %s", label, i, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		extra, whose := want[n:], "oracle only"
		if len(got) > len(want) {
			extra, whose = got[n:], "incremental only"
		}
		t.Fatalf("%s: oracle fired %d, incremental fired %d; first %s: %s",
			label, len(want), len(got), whose, extra[0])
	}
}

// equivQueries is the predicate mix under test: thresholds both ways, a
// rate query, and top-k with and without rank sensitivity, all over a tiny
// key domain on a deliberately coarse sketch so Count-Min collisions are
// common — collision-induced crossings are exactly what cell-granular
// (rather than key-granular) invalidation must catch.
func equivQueries() []StandingQuery {
	return []StandingQuery{
		{Kind: StandingThreshold, Key: 3, Value: 40},
		{Kind: StandingThreshold, Key: 5, Value: 15},
		{Kind: StandingThreshold, Key: 9, Value: 25, Below: true},
		{Kind: StandingRate, Key: 7, Range: 400, Factor: 2, Value: 10},
		{Kind: StandingTopK, K: 3, Keys: []uint64{1, 2, 3, 4, 5, 6}},
		{Kind: StandingTopK, K: 2, Keys: []uint64{7, 8, 9}, RankChanges: true},
	}
}

func equivParams(algo Algorithm) Params {
	p := Params{Epsilon: 0.25, Delta: 0.25, WindowLength: 1000, Seed: 11, Algorithm: algo}
	if algo == AlgoDW {
		p.UpperBound = 1 << 16
	}
	return p
}

// collectRegistry subscribes the queries and returns the watcher plus the
// replayed initial firings and the ID→index map.
func collectRegistry(t *testing.T, reg *StandingRegistry, queries []StandingQuery) (*StandingWatcher, []Notification, map[uint64]int) {
	t.Helper()
	info, err := reg.Subscribe(queries)
	if err != nil {
		t.Fatal(err)
	}
	w, missed, _, err := reg.Attach(info.ID, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	idx := make(map[uint64]int, len(info.Queries))
	for i, id := range info.Queries {
		idx[id] = i
	}
	return w, missed, idx
}

func drainWatcher(w *StandingWatcher) []Notification {
	var out []Notification
	for {
		select {
		case n, ok := <-w.C:
			if !ok {
				return out
			}
			out = append(out, n)
		default:
			return out
		}
	}
}

// TestStandingOracleEquivalenceIngest drives a Sharded engine with a
// deterministic workload and checks the incremental evaluator's firings
// against the brute-force oracle at every batch boundary.
func TestStandingOracleEquivalenceIngest(t *testing.T) {
	for _, algo := range []Algorithm{AlgoEH, AlgoDW} {
		t.Run(algo.String(), func(t *testing.T) {
			eng, err := NewSharded(ShardedConfig{Params: equivParams(algo), Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			queries := equivQueries()
			reg := NewStandingRegistry(StandingConfig{Window: 1000, RingSize: 16384, QueueSize: 16384})
			reg.Bind(eng)
			eng.SetNotifier(reg)
			defer eng.SetNotifier(nil)

			oracle := newEquivOracle(1000, queries)
			w, missed, queryIdx := collectRegistry(t, reg, queries)
			// Subscribe ran the initial evaluation; the oracle's first pass
			// covers the same (empty-engine) boundary.
			want := oracle.eval(eng)

			rng := rand.New(rand.NewSource(42))
			tick := Tick(1)
			for round := 0; round < 300; round++ {
				if round%9 == 4 {
					tick += Tick(50 + rng.Intn(400))
					eng.Advance(tick)
				} else {
					evs := make([]Event, 1+rng.Intn(6))
					for i := range evs {
						if rng.Intn(4) == 0 {
							tick++
						}
						evs[i] = Event{
							Key:  uint64(1 + rng.Intn(12)),
							Tick: tick,
							N:    uint64(1 + rng.Intn(8)),
						}
					}
					eng.AddBatch(evs)
				}
				want = append(want, oracle.eval(eng)...)
			}

			notifs := append(missed, drainWatcher(w)...)
			got := make([]equivFiring, len(notifs))
			for i, n := range notifs {
				got[i] = toEquivFiring(n, queryIdx)
			}
			if len(want) < 10 {
				t.Fatalf("workload too quiet: only %d oracle firings — the test is not exercising the evaluator", len(want))
			}
			compareFirings(t, algo.String(), want, got)
		})
	}
}

// TestStandingOracleEquivalenceCoordinator runs the same check on the other
// evaluation surface: two engines behind a delta-pulling coordinator, the
// registry refreshed with each merged root plus the pull's changed-cell
// set, the oracle brute-forcing every predicate against the same root.
func TestStandingOracleEquivalenceCoordinator(t *testing.T) {
	for _, algo := range []Algorithm{AlgoEH, AlgoDW} {
		t.Run(algo.String(), func(t *testing.T) {
			var engines [2]*Sharded
			var sites []Site
			for i := range engines {
				eng, err := NewSharded(ShardedConfig{Params: equivParams(algo), Shards: 2})
				if err != nil {
					t.Fatal(err)
				}
				engines[i] = eng
				sites = append(sites, NewLocalSite(fmt.Sprintf("site-%d", i), eng))
			}
			co := NewCoordinator(sites...)
			co.SetDeltaPulls(true)

			queries := equivQueries()
			// Coordinator surface: explicit keys required, target bound per
			// refresh rather than up front.
			reg := NewStandingRegistry(StandingConfig{Window: 1000, RequireKeys: true, RingSize: 16384, QueueSize: 16384})
			oracle := newEquivOracle(1000, queries)
			w, missed, queryIdx := collectRegistry(t, reg, queries)
			if len(missed) != 0 {
				t.Fatalf("unbound registry fired at subscribe: %+v", missed)
			}
			var want []equivFiring

			rng := rand.New(rand.NewSource(43))
			tick := Tick(1)
			for round := 0; round < 120; round++ {
				// Mutate one or both sites, sometimes neither (pull-only round:
				// the delta is empty and nothing may fire).
				for e := range engines {
					switch rng.Intn(3) {
					case 0:
					case 1:
						evs := make([]Event, 1+rng.Intn(5))
						for i := range evs {
							if rng.Intn(4) == 0 {
								tick++
							}
							evs[i] = Event{Key: uint64(1 + rng.Intn(12)), Tick: tick, N: uint64(1 + rng.Intn(8))}
						}
						engines[e].AddBatch(evs)
					case 2:
						tick += Tick(30 + rng.Intn(250))
						engines[e].Advance(tick)
					}
				}
				root, _, err := co.AggregateTree()
				if err != nil {
					t.Fatal(err)
				}
				cells, all := co.TakeChangedCells()
				reg.RefreshTarget(root, cells, all)
				want = append(want, oracle.eval(root)...)
			}
			if fp, dp := co.FullPulls(), co.DeltaPulls(); dp == 0 {
				t.Fatalf("delta path not exercised: %d full pulls, %d delta pulls", fp, dp)
			}

			notifs := drainWatcher(w)
			got := make([]equivFiring, len(notifs))
			for i, n := range notifs {
				got[i] = toEquivFiring(n, queryIdx)
			}
			if len(want) < 10 {
				t.Fatalf("workload too quiet: only %d oracle firings", len(want))
			}
			compareFirings(t, algo.String(), want, got)
		})
	}
}

// Silence the unused-import guard if the standing alias set shrinks.
var _ = standing.KindThreshold
