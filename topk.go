package ecmsketch

import (
	"fmt"
	"sort"
)

// TopK continuously tracks the k most frequent items of a sliding window.
// It pairs an ECM-sketch backend with a bounded candidate set: every offered
// item is admitted as a candidate, and candidates are re-scored against the
// (decaying) window on every report. This is the practical "find the hot
// items without scanning the universe" companion to the dyadic Hierarchy —
// cheaper (no log|U| sketch stack) but only able to report items it has
// seen compete, whereas the Hierarchy enumerates heavy hitters of the whole
// domain.
//
// The backend is any IngestQuerier: TopK can own a private Sketch (NewTopK)
// or wrap a sketch the caller already feeds for other queries (NewTopKOver),
// so a server tracking hot keys does not pay for a second copy of the
// stream. The candidate set itself is not synchronized: wrap calls to Offer
// and Top in the caller's lock when used from multiple goroutines, even if
// the backend (SafeSketch, Sharded, a remote client) is concurrency-safe.
type TopK struct {
	k      int
	target IngestQuerier
	window Tick
	// owned is the private sketch behind NewTopK, nil when wrapping.
	owned *Sketch
	// candidates holds up to overprovision·k keys worth re-scoring.
	candidates map[uint64]struct{}
	maxCand    int
	sinceTrim  int
}

// topKOverprovision bounds the candidate set at this multiple of k; window
// decay can promote previously-mid items, so the set keeps a margin beyond
// the current top k.
const topKOverprovision = 8

// NewTopK builds a tracker for the k most frequent items over p's window,
// owning a private ECM-sketch.
func NewTopK(k int, p Params) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ecmsketch: k must be positive, got %d", k)
	}
	s, err := New(p)
	if err != nil {
		return nil, err
	}
	tk, err := NewTopKOver(k, s, p.WindowLength)
	if err != nil {
		return nil, err
	}
	tk.owned = s
	return tk, nil
}

// NewTopKOver builds a tracker on top of an existing sketch backend; offers
// are forwarded to it, so a stream fed once serves both point queries and
// top-k reports. window is the backend's window length in ticks (the
// horizon candidate trimming scores against).
func NewTopKOver(k int, target IngestQuerier, window Tick) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ecmsketch: k must be positive, got %d", k)
	}
	if target == nil {
		return nil, fmt.Errorf("ecmsketch: TopK needs a backend")
	}
	if window == 0 {
		return nil, fmt.Errorf("ecmsketch: TopK window must be positive")
	}
	return &TopK{
		k:          k,
		target:     target,
		window:     window,
		candidates: make(map[uint64]struct{}, topKOverprovision*k),
		maxCand:    topKOverprovision * k,
	}, nil
}

// Sketch exposes the private sketch behind NewTopK (e.g. for point queries
// or merging its serialized form elsewhere). It is nil for trackers built
// with NewTopKOver — query the wrapped backend directly instead.
func (tk *TopK) Sketch() *Sketch { return tk.owned }

// Offer registers one arrival and keeps the key as a ranking candidate.
func (tk *TopK) Offer(key uint64, t Tick) { tk.OfferN(key, t, 1) }

// OfferN registers n arrivals of key at tick t in one call.
func (tk *TopK) OfferN(key uint64, t Tick, n uint64) {
	tk.target.AddN(key, t, n)
	tk.note(key)
}

// OfferString registers a string-keyed arrival.
func (tk *TopK) OfferString(key string, t Tick) { tk.Offer(KeyString(key), t) }

// Note admits a key as a ranking candidate without ingesting anything —
// for callers that already fed the backend (e.g. via AddBatch) and only
// need TopK's bookkeeping.
func (tk *TopK) Note(key uint64) { tk.note(key) }

func (tk *TopK) note(key uint64) {
	tk.candidates[key] = struct{}{}
	tk.sinceTrim++
	if len(tk.candidates) > tk.maxCand && tk.sinceTrim >= tk.maxCand/2 {
		tk.trim()
		tk.sinceTrim = 0
	}
}

// trim drops the weakest candidates, keeping the best maxCand/2 by current
// whole-window estimate.
func (tk *TopK) trim() {
	scored := tk.scoreAll(tk.window)
	keep := tk.maxCand / 2
	if keep > len(scored) {
		keep = len(scored)
	}
	next := make(map[uint64]struct{}, tk.maxCand)
	for _, it := range scored[:keep] {
		next[it.Key] = struct{}{}
	}
	tk.candidates = next
}

// scoreAll estimates every candidate over the last r ticks, sorted by
// estimate descending (ties by key for determinism).
func (tk *TopK) scoreAll(r Tick) []HeavyItem {
	out := make([]HeavyItem, 0, len(tk.candidates))
	for key := range tk.candidates {
		out = append(out, HeavyItem{Key: key, Estimate: tk.target.Estimate(key, r)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top reports the current k hottest candidates within the last r ticks.
// Items whose window content expired score zero and drop out naturally.
func (tk *TopK) Top(r Tick) []HeavyItem {
	scored := tk.scoreAll(r)
	n := tk.k
	if n > len(scored) {
		n = len(scored)
	}
	// Omit candidates with empty window content.
	out := make([]HeavyItem, 0, n)
	for _, it := range scored[:n] {
		if it.Estimate > 0 {
			out = append(out, it)
		}
	}
	return out
}

// Advance moves the window forward without an arrival.
func (tk *TopK) Advance(t Tick) { tk.target.Advance(t) }

// Candidates reports the current candidate-set size (for tests and
// capacity planning).
func (tk *TopK) Candidates() int { return len(tk.candidates) }

// MemoryBytes reports the candidate-set footprint, plus the private sketch
// when the tracker owns one (wrapped backends account their own memory).
func (tk *TopK) MemoryBytes() int {
	total := 16 * len(tk.candidates)
	if tk.owned != nil {
		total += tk.owned.MemoryBytes()
	}
	return total
}
