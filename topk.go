package ecmsketch

import (
	"fmt"
	"sort"
)

// TopK continuously tracks the k most frequent items of a sliding window.
// It pairs an ECM-sketch with a bounded candidate set: every offered item is
// admitted as a candidate if its current estimate competes with the k-th
// best, and candidates are re-scored against the (decaying) window on every
// report. This is the practical "find the hot items without scanning the
// universe" companion to the dyadic Hierarchy — cheaper (no log|U| sketch
// stack) but only able to report items it has seen compete, whereas the
// Hierarchy enumerates heavy hitters of the whole domain.
type TopK struct {
	k      int
	sketch *Sketch
	// candidates holds up to overprovision·k keys worth re-scoring.
	candidates map[uint64]struct{}
	maxCand    int
	sinceTrim  int
}

// topKOverprovision bounds the candidate set at this multiple of k; window
// decay can promote previously-mid items, so the set keeps a margin beyond
// the current top k.
const topKOverprovision = 8

// NewTopK builds a tracker for the k most frequent items over p's window.
func NewTopK(k int, p Params) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ecmsketch: k must be positive, got %d", k)
	}
	s, err := New(p)
	if err != nil {
		return nil, err
	}
	return &TopK{
		k:          k,
		sketch:     s,
		candidates: make(map[uint64]struct{}, topKOverprovision*k),
		maxCand:    topKOverprovision * k,
	}, nil
}

// Sketch exposes the underlying sketch (e.g. for point queries or merging
// its serialized form elsewhere).
func (tk *TopK) Sketch() *Sketch { return tk.sketch }

// Offer registers one arrival and keeps the key as a ranking candidate.
func (tk *TopK) Offer(key uint64, t Tick) {
	tk.sketch.Add(key, t)
	tk.candidates[key] = struct{}{}
	tk.sinceTrim++
	if len(tk.candidates) > tk.maxCand && tk.sinceTrim >= tk.maxCand/2 {
		tk.trim()
		tk.sinceTrim = 0
	}
}

// OfferString registers a string-keyed arrival.
func (tk *TopK) OfferString(key string, t Tick) { tk.Offer(KeyString(key), t) }

// trim drops the weakest candidates, keeping the best maxCand/2 by current
// whole-window estimate.
func (tk *TopK) trim() {
	scored := tk.scoreAll(tk.sketch.Params().WindowLength)
	keep := tk.maxCand / 2
	if keep > len(scored) {
		keep = len(scored)
	}
	next := make(map[uint64]struct{}, tk.maxCand)
	for _, it := range scored[:keep] {
		next[it.Key] = struct{}{}
	}
	tk.candidates = next
}

// scoreAll estimates every candidate over the last r ticks, sorted by
// estimate descending (ties by key for determinism).
func (tk *TopK) scoreAll(r Tick) []HeavyItem {
	out := make([]HeavyItem, 0, len(tk.candidates))
	for key := range tk.candidates {
		out = append(out, HeavyItem{Key: key, Estimate: tk.sketch.Estimate(key, r)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Estimate != out[j].Estimate {
			return out[i].Estimate > out[j].Estimate
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Top reports the current k hottest candidates within the last r ticks.
// Items whose window content expired score zero and drop out naturally.
func (tk *TopK) Top(r Tick) []HeavyItem {
	scored := tk.scoreAll(r)
	n := tk.k
	if n > len(scored) {
		n = len(scored)
	}
	// Omit candidates with empty window content.
	out := make([]HeavyItem, 0, n)
	for _, it := range scored[:n] {
		if it.Estimate > 0 {
			out = append(out, it)
		}
	}
	return out
}

// Advance moves the window forward without an arrival.
func (tk *TopK) Advance(t Tick) { tk.sketch.Advance(t) }

// Candidates reports the current candidate-set size (for tests and
// capacity planning).
func (tk *TopK) Candidates() int { return len(tk.candidates) }

// MemoryBytes reports sketch plus candidate-set footprint.
func (tk *TopK) MemoryBytes() int { return tk.sketch.MemoryBytes() + 16*len(tk.candidates) }
