package ecmsketch_test

import (
	"math/rand"
	"testing"

	"ecmsketch"
)

func topKParams() ecmsketch.Params {
	return ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 10000, Seed: 3}
}

func TestTopKValidation(t *testing.T) {
	if _, err := ecmsketch.NewTopK(0, topKParams()); err == nil {
		t.Error("k=0 accepted")
	}
	bad := topKParams()
	bad.Epsilon = 0
	if _, err := ecmsketch.NewTopK(3, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTopKBasicRanking(t *testing.T) {
	tk, err := ecmsketch.NewTopK(3, topKParams())
	if err != nil {
		t.Fatal(err)
	}
	var now ecmsketch.Tick
	counts := map[uint64]int{1: 500, 2: 300, 3: 200, 4: 50, 5: 10}
	for key, n := range counts {
		for i := 0; i < n; i++ {
			now++
			tk.Offer(key, now)
		}
	}
	top := tk.Top(10000)
	if len(top) != 3 {
		t.Fatalf("Top returned %d items, want 3", len(top))
	}
	want := []uint64{1, 2, 3}
	for i, it := range top {
		if it.Key != want[i] {
			t.Errorf("rank %d: key %d, want %d (top=%v)", i, it.Key, want[i], top)
		}
	}
	if top[0].Estimate < 450 {
		t.Errorf("top estimate %v, want ≈500", top[0].Estimate)
	}
}

func TestTopKWindowDecay(t *testing.T) {
	p := topKParams()
	p.WindowLength = 100
	tk, err := ecmsketch.NewTopK(2, p)
	if err != nil {
		t.Fatal(err)
	}
	// Key 7 is hot early, key 8 hot late; after the window slides past the
	// early burst only key 8 remains.
	for i := ecmsketch.Tick(1); i <= 80; i++ {
		tk.Offer(7, i)
	}
	for i := ecmsketch.Tick(300); i <= 380; i++ {
		tk.Offer(8, i)
	}
	top := tk.Top(100)
	if len(top) != 1 || top[0].Key != 8 {
		t.Errorf("Top after decay = %v, want only key 8", top)
	}
}

func TestTopKCandidateBounded(t *testing.T) {
	tk, err := ecmsketch.NewTopK(5, topKParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	var now ecmsketch.Tick
	for i := 0; i < 20000; i++ {
		now++
		key := uint64(rng.Intn(100000)) // far more distinct keys than capacity
		if rng.Intn(5) == 0 {
			key = uint64(rng.Intn(5)) // a few recurring hot keys
		}
		tk.Offer(key, now)
	}
	if c := tk.Candidates(); c > 8*5*2 {
		t.Errorf("candidate set grew to %d, want bounded near %d", c, 8*5)
	}
	top := tk.Top(10000)
	if len(top) == 0 {
		t.Fatal("no top items")
	}
	// The recurring hot keys must dominate despite churn.
	hot := map[uint64]bool{0: true, 1: true, 2: true, 3: true, 4: true}
	for i, it := range top {
		if i < 3 && !hot[it.Key] {
			t.Errorf("rank %d is churn key %d (top=%v)", i, it.Key, top)
		}
	}
}

func TestTopKZipfAgainstOracle(t *testing.T) {
	tk, err := ecmsketch.NewTopK(10, topKParams())
	if err != nil {
		t.Fatal(err)
	}
	oracle := ecmsketch.NewOracle(10000)
	rng := rand.New(rand.NewSource(8))
	zipf := rand.NewZipf(rng, 1.3, 1, 5000)
	var now ecmsketch.Tick
	for i := 0; i < 30000; i++ {
		now++
		k := zipf.Uint64()
		tk.Offer(k, now)
		oracle.Add(k, now)
	}
	top := tk.Top(10000)
	truth := oracle.HeavyHitters(0.01, 10000)
	truthSet := map[uint64]bool{}
	for i, ev := range truth {
		if i >= 5 {
			break
		}
		truthSet[ev.Key] = true
	}
	found := 0
	for _, it := range top {
		if truthSet[it.Key] {
			found++
		}
	}
	if found < len(truthSet)-1 {
		t.Errorf("top-10 found only %d of the true top-%d (top=%v)", found, len(truthSet), top)
	}
}

func TestTopKOverValidation(t *testing.T) {
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: topKParams()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ecmsketch.NewTopKOver(0, sh, 10000); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ecmsketch.NewTopKOver(3, nil, 10000); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := ecmsketch.NewTopKOver(3, sh, 0); err == nil {
		t.Error("zero window accepted")
	}
}

// TestTopKOverSharedEngine checks the wrap-an-existing-backend mode: the
// stream is ingested exactly once into the shared engine (no private
// second sketch), and offers, batch notes and point queries all see the
// same counters.
func TestTopKOverSharedEngine(t *testing.T) {
	p := topKParams()
	sh, err := ecmsketch.NewSharded(ecmsketch.ShardedConfig{Params: p, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	tk, err := ecmsketch.NewTopKOver(2, sh, p.WindowLength)
	if err != nil {
		t.Fatal(err)
	}
	if tk.Sketch() != nil {
		t.Error("wrapped tracker reports a private sketch")
	}
	var now ecmsketch.Tick
	for i := 0; i < 100; i++ {
		now++
		tk.Offer(1, now)
	}
	now++
	tk.OfferN(2, now, 40)
	// Ingest a batch straight into the engine, then only note the keys.
	batch := make([]ecmsketch.Event, 25)
	for i := range batch {
		now++
		batch[i] = ecmsketch.Event{Key: 3, Tick: now}
	}
	sh.AddBatch(batch)
	tk.Note(3)

	if got := sh.Count(); got != 100+40+25 {
		t.Errorf("engine ingested %d arrivals, want exactly %d (single ingest)", got, 100+40+25)
	}
	top := tk.Top(p.WindowLength)
	if len(top) != 2 || top[0].Key != 1 || top[1].Key != 2 {
		t.Errorf("Top = %v, want keys 1 then 2", top)
	}
	if top[0].Estimate < 90 {
		t.Errorf("rank 1 estimate %v, want ≈100", top[0].Estimate)
	}
	if tk.MemoryBytes() <= 0 {
		t.Error("no candidate memory reported")
	}
	// The engine is queryable directly — same counters the tracker scored.
	if est := sh.Estimate(2, p.WindowLength); est < 40 {
		t.Errorf("engine estimate for key 2 = %v, want ≥40", est)
	}
}

func TestTopKStrings(t *testing.T) {
	tk, err := ecmsketch.NewTopK(1, topKParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := ecmsketch.Tick(1); i <= 20; i++ {
		tk.OfferString("/hot", i)
	}
	tk.OfferString("/cold", 21)
	top := tk.Top(10000)
	if len(top) != 1 || top[0].Key != ecmsketch.KeyString("/hot") {
		t.Errorf("Top = %v", top)
	}
	if tk.MemoryBytes() <= 0 {
		t.Error("no memory reported")
	}
	if tk.Sketch().Count() != 21 {
		t.Errorf("Count = %d", tk.Sketch().Count())
	}
}
