package ecmsketch

import "ecmsketch/internal/window"

// WindowedSum maintains the sum of non-negative integer values over a
// sliding window with relative error ε — e.g. bytes transferred in the last
// hour, revenue over the last 10 000 sales. It is the weighted-value
// counterpart of the counters inside an ECM-sketch (the "sums" extension of
// the exponential histogram), decomposing values bitwise across parallel
// histograms at O(log maxValue) cost per arrival.
type WindowedSum = window.SumEH

// SumConfig configures a WindowedSum.
type SumConfig struct {
	// Model selects time-based or count-based windows.
	Model WindowModel
	// WindowLength is N, in ticks.
	WindowLength Tick
	// Epsilon is the maximum relative error of sum estimates.
	Epsilon float64
	// MaxValue bounds individual arrival values.
	MaxValue uint64
}

// NewWindowedSum constructs a windowed summer.
func NewWindowedSum(cfg SumConfig) (*WindowedSum, error) {
	return window.NewSumEH(window.Config{
		Model:   cfg.Model,
		Length:  cfg.WindowLength,
		Epsilon: cfg.Epsilon,
	}, cfg.MaxValue)
}

// MergeWindowedSums aggregates per-site summers over time-based windows
// (Theorem 4 applied per bit plane); maxValue bounds the merged stream's
// per-arrival values.
func MergeWindowedSums(cfg SumConfig, inputs ...*WindowedSum) (*WindowedSum, error) {
	return window.MergeSumEH(window.Config{
		Model:   cfg.Model,
		Length:  cfg.WindowLength,
		Epsilon: cfg.Epsilon,
	}, cfg.MaxValue, inputs...)
}
