package ecmsketch_test

import (
	"math"
	"testing"

	"ecmsketch"
)

func TestWindowedSumBasics(t *testing.T) {
	ws, err := ecmsketch.NewWindowedSum(ecmsketch.SumConfig{
		WindowLength: 1000,
		Epsilon:      0.05,
		MaxValue:     10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := ecmsketch.Tick(1); i <= 200; i++ {
		v := uint64(i % 100)
		if err := ws.Add(i, v); err != nil {
			t.Fatal(err)
		}
		want += float64(v)
	}
	got := ws.SumWindow()
	if math.Abs(got-want) > 0.05*want+1 {
		t.Errorf("SumWindow = %v, want ≈%v", got, want)
	}
	if err := ws.Add(201, 10001); err == nil {
		t.Error("value above MaxValue accepted")
	}
}

func TestWindowedSumValidation(t *testing.T) {
	if _, err := ecmsketch.NewWindowedSum(ecmsketch.SumConfig{Epsilon: 0.1, MaxValue: 10}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := ecmsketch.NewWindowedSum(ecmsketch.SumConfig{WindowLength: 10, Epsilon: 0.1}); err == nil {
		t.Error("zero MaxValue accepted")
	}
}

func TestMergeWindowedSums(t *testing.T) {
	cfg := ecmsketch.SumConfig{WindowLength: 500, Epsilon: 0.1, MaxValue: 1000}
	a, err := ecmsketch.NewWindowedSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ecmsketch.NewWindowedSum(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := ecmsketch.Tick(1); i <= 300; i++ {
		if err := a.Add(i, 10); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(i, 20); err != nil {
			t.Fatal(err)
		}
		want += 30
	}
	m, err := ecmsketch.MergeWindowedSums(cfg, a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := m.SumWindow()
	if math.Abs(got-want) > 0.25*want+1 {
		t.Errorf("merged SumWindow = %v, want ≈%v", got, want)
	}
}

func TestECMIntervalQueries(t *testing.T) {
	sk, err := ecmsketch.New(ecmsketch.Params{Epsilon: 0.05, Delta: 0.05, WindowLength: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Key 1 arrives in (0,100], key 2 in (100,200].
	for i := ecmsketch.Tick(1); i <= 100; i++ {
		sk.Add(1, i)
	}
	for i := ecmsketch.Tick(101); i <= 200; i++ {
		sk.Add(2, i)
	}
	if got := sk.EstimateInterval(1, 0, 100); math.Abs(got-100) > 20 {
		t.Errorf("EstimateInterval(1, 0..100) = %v, want ≈100", got)
	}
	if got := sk.EstimateInterval(1, 100, 200); got > 20 {
		t.Errorf("EstimateInterval(1, 100..200) = %v, want ≈0", got)
	}
	if got := sk.EstimateInterval(2, 100, 200); math.Abs(got-100) > 20 {
		t.Errorf("EstimateInterval(2, 100..200) = %v, want ≈100", got)
	}
	if got := sk.EstimateInterval(2, 200, 100); got != 0 {
		t.Errorf("inverted interval = %v", got)
	}
}
